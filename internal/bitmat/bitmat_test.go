package bitmat

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rdf"
)

// figure32Graph is the sample data of Figure 3.2, also the data whose
// bitcube is drawn in Figure 4.1.
func figure32Graph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, tr := range []rdf.Triple{
		rdf.T("Julia", "actedIn", "Seinfeld"),
		rdf.T("Julia", "actedIn", "Veep"),
		rdf.T("Julia", "actedIn", "NewAdvOldChristine"),
		rdf.T("Julia", "actedIn", "CurbYourEnthu"),
		rdf.T("Larry", "actedIn", "CurbYourEnthu"),
		rdf.T("Jerry", "hasFriend", "Julia"),
		rdf.T("Jerry", "hasFriend", "Larry"),
		rdf.T("Seinfeld", "location", "NewYorkCity"),
		rdf.T("Veep", "location", "D.C."),
		rdf.T("CurbYourEnthu", "location", "LosAngeles"),
		rdf.T("NewAdvOldChristine", "location", "Jersey"),
	} {
		g.Add(tr)
	}
	return g
}

func buildSample(t *testing.T) (*Index, *rdf.Dictionary) {
	t.Helper()
	idx, err := Build(figure32Graph())
	if err != nil {
		t.Fatal(err)
	}
	return idx, idx.Dictionary()
}

func TestFigure41Bitcube(t *testing.T) {
	// Figure 4.1 slices the bitcube of the Figure 3.2 data along the
	// predicate dimension. Verify each S-O slice holds exactly the triples
	// of that predicate.
	idx, dict := buildSample(t)
	g := figure32Graph()
	for p := 1; p <= dict.NumPredicates(); p++ {
		so := idx.MatSO(rdf.ID(p))
		pred, _ := dict.Predicate(rdf.ID(p))
		wantCount := 0
		for _, tr := range g.Triples() {
			if tr.P != pred {
				continue
			}
			wantCount++
			s := dict.SubjectID(tr.S)
			o := dict.ObjectID(tr.O)
			if !so.Test(int(s-1), int(o-1)) {
				t.Errorf("S-O BitMat of %s missing (%s,%s)", pred, tr.S, tr.O)
			}
		}
		if int(so.Count()) != wantCount {
			t.Errorf("S-O BitMat of %s has %d bits, want %d", pred, so.Count(), wantCount)
		}
		// The O-S BitMat is the transpose.
		os := idx.MatOS(rdf.ID(p))
		if !os.Equal(so.Transpose()) {
			t.Errorf("O-S BitMat of %s is not the transpose of S-O", pred)
		}
	}
	// hasFriend has exactly two set bits (Jerry->Julia, Jerry->Larry), as
	// in the figure.
	hf := dict.PredicateID(rdf.NewIRI("hasFriend"))
	if got := idx.MatSO(hf).Count(); got != 2 {
		t.Errorf("hasFriend slice has %d bits, want 2", got)
	}
}

func TestIndexCardinalities(t *testing.T) {
	idx, dict := buildSample(t)
	cases := []struct {
		pred string
		want int
	}{{"actedIn", 5}, {"hasFriend", 2}, {"location", 4}}
	for _, c := range cases {
		p := dict.PredicateID(rdf.NewIRI(c.pred))
		if got := idx.PredicateCardinality(p); got != c.want {
			t.Errorf("PredicateCardinality(%s) = %d, want %d", c.pred, got, c.want)
		}
	}
	julia := dict.SubjectID(rdf.NewIRI("Julia"))
	if got := idx.SubjectCardinality(julia); got != 4 {
		t.Errorf("SubjectCardinality(Julia) = %d, want 4", got)
	}
	curb := dict.ObjectID(rdf.NewIRI("CurbYourEnthu"))
	if got := idx.ObjectCardinality(curb); got != 2 {
		t.Errorf("ObjectCardinality(CurbYourEnthu) = %d, want 2", got)
	}
	if idx.PredicateCardinality(0) != 0 || idx.SubjectCardinality(999) != 0 {
		t.Error("out-of-range cardinalities must be 0")
	}
}

func TestRowPSAndRowPO(t *testing.T) {
	idx, dict := buildSample(t)
	// (?who actedIn CurbYourEnthu) -> Julia and Larry.
	p := dict.PredicateID(rdf.NewIRI("actedIn"))
	o := dict.ObjectID(rdf.NewIRI("CurbYourEnthu"))
	m := idx.RowPS(p, o)
	if m.Count() != 2 {
		t.Fatalf("RowPS count = %d, want 2", m.Count())
	}
	for _, name := range []string{"Julia", "Larry"} {
		s := dict.SubjectID(rdf.NewIRI(name))
		if !m.Test(0, int(s-1)) {
			t.Errorf("RowPS missing %s", name)
		}
	}
	// (Jerry hasFriend ?x) -> Julia and Larry.
	hf := dict.PredicateID(rdf.NewIRI("hasFriend"))
	jerry := dict.SubjectID(rdf.NewIRI("Jerry"))
	m2 := idx.RowPO(hf, jerry)
	if m2.Count() != 2 {
		t.Fatalf("RowPO count = %d, want 2", m2.Count())
	}
	// Unknown key gives an empty matrix, not a panic.
	if idx.RowPO(hf, 0).Count() != 0 || idx.RowPS(0, o).Count() != 0 {
		t.Error("zero IDs must give empty matrices")
	}
}

func TestContains(t *testing.T) {
	idx, dict := buildSample(t)
	enc := func(s, p, o string) (rdf.ID, rdf.ID, rdf.ID) {
		return dict.SubjectID(rdf.NewIRI(s)), dict.PredicateID(rdf.NewIRI(p)), dict.ObjectID(rdf.NewIRI(o))
	}
	s, p, o := enc("Julia", "actedIn", "Seinfeld")
	if !idx.Contains(s, p, o) {
		t.Error("Contains must find an indexed triple")
	}
	s2, p2, o2 := enc("Larry", "actedIn", "Seinfeld")
	if idx.Contains(s2, p2, o2) {
		t.Error("Contains must reject a non-triple")
	}
}

func TestMatPSMatPOFamilies(t *testing.T) {
	idx, dict := buildSample(t)
	// P-O BitMat of Julia: rows over predicates, one row (actedIn) with 4 bits.
	julia := dict.SubjectID(rdf.NewIRI("Julia"))
	po := idx.MatPO(julia)
	if po.NRows() != dict.NumPredicates() || po.Count() != 4 {
		t.Fatalf("MatPO(Julia): rows=%d count=%d", po.NRows(), po.Count())
	}
	actedIn := dict.PredicateID(rdf.NewIRI("actedIn"))
	if po.Row(int(actedIn-1)) == nil || po.Row(int(actedIn-1)).Count() != 4 {
		t.Error("MatPO(Julia) actedIn row must have 4 objects")
	}
	// P-S BitMat of Seinfeld: actedIn row has Julia; location row is empty
	// (Seinfeld is the subject of location, not the object).
	seinfeld := dict.ObjectID(rdf.NewIRI("Seinfeld"))
	ps := idx.MatPS(seinfeld)
	if ps.Count() != 1 {
		t.Fatalf("MatPS(Seinfeld) count = %d, want 1", ps.Count())
	}
}

func TestMatrixFoldUnfold(t *testing.T) {
	m := NewMatrix(4, 6)
	m.SetRow(0, bitvec.RowFromPositions(6, []uint32{0, 2}))
	m.SetRow(2, bitvec.RowFromPositions(6, []uint32{2, 5}))
	if m.Count() != 4 {
		t.Fatalf("Count = %d, want 4", m.Count())
	}
	fc := m.FoldCols()
	if got := fc.String(); got != "101001" {
		t.Errorf("FoldCols = %s, want 101001", got)
	}
	fr := m.FoldRows()
	if got := fr.String(); got != "1010" {
		t.Errorf("FoldRows = %s, want 1010", got)
	}
	// Unfold cols with a mask keeping only column 2.
	mask := bitvec.NewBits(6)
	mask.Set(2)
	mc := m.Clone()
	mc.UnfoldCols(mask)
	if mc.Count() != 2 || !mc.Test(0, 2) || !mc.Test(2, 2) || mc.Test(0, 0) {
		t.Errorf("UnfoldCols left wrong bits: count=%d", mc.Count())
	}
	// Original untouched.
	if m.Count() != 4 {
		t.Error("Clone must isolate unfold effects")
	}
	// Unfold rows keeping only row 2.
	rmask := bitvec.NewBits(4)
	rmask.Set(2)
	mr := m.Clone()
	mr.UnfoldRows(rmask)
	if mr.Count() != 2 || mr.Row(0) != nil || mr.Row(2) == nil {
		t.Errorf("UnfoldRows left wrong rows: count=%d", mr.Count())
	}
}

func TestMatrixFoldIsProjection(t *testing.T) {
	// fold(BM, dim) == pi_dim(BM): the fold of the column axis must equal
	// the set of distinct column coordinates of the set bits.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nr, nc := 1+rng.Intn(20), 1+rng.Intn(40)
		m := NewMatrix(nr, nc)
		want := map[int]bool{}
		wantRows := map[int]bool{}
		for i := 0; i < 60; i++ {
			r, c := rng.Intn(nr), rng.Intn(nc)
			old := m.Row(r)
			var pos []uint32
			if old != nil {
				old.ForEach(func(j int) bool { pos = append(pos, uint32(j)); return true })
			}
			pos = append(pos, uint32(c))
			m.SetRow(r, bitvec.RowFromPositions(nc, pos))
			want[c] = true
			wantRows[r] = true
		}
		fc := m.FoldCols()
		for c := 0; c < nc; c++ {
			if fc.Test(c) != want[c] {
				t.Fatalf("FoldCols bit %d = %v, want %v", c, fc.Test(c), want[c])
			}
		}
		fr := m.FoldRows()
		for r := 0; r < nr; r++ {
			if fr.Test(r) != wantRows[r] {
				t.Fatalf("FoldRows bit %d = %v, want %v", r, fr.Test(r), wantRows[r])
			}
		}
	}
}

func TestMatrixUnfoldFoldInvariant(t *testing.T) {
	// After unfold(m, mask, axis), fold(m, axis) must be a subset of mask.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, nc := 1+rng.Intn(15), 1+rng.Intn(30)
		m := NewMatrix(nr, nc)
		for r := 0; r < nr; r++ {
			var pos []uint32
			for c := 0; c < nc; c++ {
				if rng.Intn(3) == 0 {
					pos = append(pos, uint32(c))
				}
			}
			if len(pos) > 0 {
				m.SetRow(r, bitvec.RowFromPositions(nc, pos))
			}
		}
		mask := bitvec.NewBits(nc)
		for c := 0; c < nc; c++ {
			if rng.Intn(2) == 0 {
				mask.Set(c)
			}
		}
		m.UnfoldCols(mask)
		sub := m.FoldCols()
		sub.AndNot(mask)
		if sub.Any() {
			return false
		}
		// Count must equal sum of row counts.
		var sum int64
		m.ForEachRow(func(r int, row *bitvec.Row) bool { sum += int64(row.Count()); return true })
		return sum == m.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMatrixTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		nr, nc := 1+rng.Intn(20), 1+rng.Intn(20)
		m := NewMatrix(nr, nc)
		for r := 0; r < nr; r++ {
			var pos []uint32
			for c := 0; c < nc; c++ {
				if rng.Intn(4) == 0 {
					pos = append(pos, uint32(c))
				}
			}
			if len(pos) > 0 {
				m.SetRow(r, bitvec.RowFromPositions(nc, pos))
			}
		}
		if !m.Transpose().Transpose().Equal(m) {
			t.Fatal("Transpose must be an involution")
		}
	}
}

func TestMatrixColumnRow(t *testing.T) {
	m := NewMatrix(5, 5)
	m.SetRow(1, bitvec.RowFromPositions(5, []uint32{2, 3}))
	m.SetRow(4, bitvec.RowFromPositions(5, []uint32{2}))
	col := m.ColumnRow(2)
	if col.Count() != 2 || !col.Test(1) || !col.Test(4) {
		t.Errorf("ColumnRow(2) wrong: %v", col)
	}
	if m.ColumnRow(0).Count() != 0 {
		t.Error("ColumnRow of empty column must be empty")
	}
}

func TestIndexSerializationRoundTrip(t *testing.T) {
	idx, dict := buildSample(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf, dict)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTriples() != idx.NumTriples() {
		t.Fatalf("round trip triples %d, want %d", back.NumTriples(), idx.NumTriples())
	}
	for p := 1; p <= dict.NumPredicates(); p++ {
		if !back.MatSO(rdf.ID(p)).Equal(idx.MatSO(rdf.ID(p))) {
			t.Errorf("predicate %d S-O mismatch after round trip", p)
		}
		if !back.MatOS(rdf.ID(p)).Equal(idx.MatOS(rdf.ID(p))) {
			t.Errorf("predicate %d O-S mismatch after round trip", p)
		}
	}
	for s := 1; s <= dict.NumSubjects(); s++ {
		if !back.MatPO(rdf.ID(s)).Equal(idx.MatPO(rdf.ID(s))) {
			t.Errorf("subject %d P-O mismatch", s)
		}
	}
}

func TestIndexSerializationRejectsCorrupt(t *testing.T) {
	idx, dict := buildSample(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] = 'X'
	if _, err := ReadIndex(bytes.NewReader(raw), dict); err == nil {
		t.Error("bad magic must be rejected")
	}
}

func TestSizes(t *testing.T) {
	idx, dict := buildSample(t)
	rep := idx.Sizes()
	wantMats := 2*dict.NumPredicates() + dict.NumSubjects() + dict.NumObjects()
	if rep.BitMats != wantMats {
		t.Errorf("BitMats = %d, want %d (2|Vp|+|Vs|+|Vo|)", rep.BitMats, wantMats)
	}
	if rep.TriplesStored != idx.NumTriples() {
		t.Errorf("TriplesStored = %d, want %d", rep.TriplesStored, idx.NumTriples())
	}
	if rep.HybridInts <= 0 || rep.RLEInts < rep.HybridInts {
		t.Errorf("size accounting broken: hybrid=%d rle=%d", rep.HybridInts, rep.RLEInts)
	}
}

func TestSetRowAccounting(t *testing.T) {
	m := NewMatrix(3, 8)
	m.SetRow(0, bitvec.RowFromPositions(8, []uint32{1, 2, 3}))
	m.SetRow(0, bitvec.RowFromPositions(8, []uint32{5}))
	if m.Count() != 1 {
		t.Fatalf("Count after row replacement = %d, want 1", m.Count())
	}
	m.SetRow(0, bitvec.EmptyRow(8))
	if m.Count() != 0 || m.Row(0) != nil {
		t.Error("empty row must normalize to nil")
	}
}

func TestSetRowWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetRow with wrong length must panic")
		}
	}()
	NewMatrix(2, 8).SetRow(0, bitvec.RowFromPositions(9, []uint32{0}))
}
