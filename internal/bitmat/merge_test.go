package bitmat

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// mergeTestTriples is a small graph with shared S/O terms, literals, and
// enough subjects that every shard count in the sweep gets non-empty parts.
func mergeTestTriples() []rdf.Triple {
	var ts []rdf.Triple
	for i := 0; i < 12; i++ {
		s := fmt.Sprintf("s%d", i)
		ts = append(ts,
			rdf.T(s, "p0", fmt.Sprintf("s%d", (i+1)%12)),
			rdf.T(s, fmt.Sprintf("p%d", i%3), "o0"),
			rdf.TL(s, "label", fmt.Sprintf("name %d", i)),
		)
	}
	return ts
}

// TestMergeIndexesMatchesMonolithic pins the tentpole's core identity: the
// k-way merge of per-shard indexes over a shared dictionary serializes
// byte-identically to a monolithic build of the whole triple set.
func TestMergeIndexesMatchesMonolithic(t *testing.T) {
	triples := mergeTestTriples()
	dict := rdf.BuildDictionaryParallel(triples, 1)
	mono, err := BuildParallelWithDictionary(triples, dict, 2)
	if err != nil {
		t.Fatal(err)
	}
	var monoBuf bytes.Buffer
	if _, err := mono.WriteTo(&monoBuf); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		parts := rdf.PartitionBySubject(triples, n)
		shards := make([]*Index, len(parts))
		for i, part := range parts {
			shards[i], err = BuildParallelWithDictionary(part, dict, 2)
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, i, err)
			}
		}
		merged, err := MergeIndexes(dict, shards)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := merged.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if merged.NumTriples() != mono.NumTriples() {
			t.Fatalf("n=%d: %d triples, want %d", n, merged.NumTriples(), mono.NumTriples())
		}
		var buf bytes.Buffer
		if _, err := merged.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), monoBuf.Bytes()) {
			t.Fatalf("n=%d: merged index serialization differs from monolithic build", n)
		}
	}
}

func TestMergeIndexesRejectsMismatchedDict(t *testing.T) {
	triples := mergeTestTriples()
	dict := rdf.BuildDictionaryParallel(triples, 1)
	idx, err := BuildParallelWithDictionary(triples, dict, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := rdf.BuildDictionaryParallel(triples[:3], 1)
	if _, err := MergeIndexes(other, []*Index{idx, idx}); err == nil {
		t.Fatal("merge with a foreign dictionary should fail validation")
	}
	if _, err := MergeIndexes(dict, nil); err == nil {
		t.Fatal("merge of zero indexes should fail")
	}
}
