package bitmat

import (
	"fmt"

	"repro/internal/rdf"
)

// MergeIndexes folds N shard indexes built over one shared dictionary into
// the single index a monolithic build over the union of their triples
// would produce. Every pair table is the k-way merge of the shards'
// (A,B)-sorted tables; because the shards partition the triple set, the
// merged lists are exactly the canonically sorted lists of the union, so
// the result is deeply identical to BuildParallel over the whole graph —
// including its serialized form, which is what keeps SaveIndex
// byte-identical across shard counts.
//
// All parts must have been built with dict (BuildParallelWithDictionary),
// so their tables already live in the shared coordinate space; the merged
// index shares the parts' pair slices whenever only one shard owns a key.
func MergeIndexes(dict *rdf.Dictionary, parts []*Index) (*Index, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("bitmat: merge of zero indexes")
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	nP, nS, nO := dict.NumPredicates(), dict.NumSubjects(), dict.NumObjects()
	for i, part := range parts {
		if len(part.soPairs) != nP || len(part.bySubject) != nS || len(part.byObject) != nO {
			return nil, fmt.Errorf("bitmat: shard %d tables (%d,%d,%d) do not match dictionary (%d,%d,%d)",
				i, len(part.soPairs), len(part.bySubject), len(part.byObject), nP, nS, nO)
		}
	}
	idx := &Index{
		dict:      dict,
		soPairs:   make([][]Pair, nP),
		osPairs:   make([][]Pair, nP),
		bySubject: make([][]Pair, nS),
		byObject:  make([][]Pair, nO),
	}
	lists := make([][]Pair, 0, len(parts))
	mergeInto := func(dst [][]Pair, key int, pick func(*Index) []Pair) {
		lists = lists[:0]
		for _, part := range parts {
			if l := pick(part); len(l) > 0 {
				lists = append(lists, l)
			}
		}
		dst[key] = mergeSortedPairLists(lists)
	}
	for p := 0; p < nP; p++ {
		mergeInto(idx.soPairs, p, func(part *Index) []Pair { return part.soPairs[p] })
		mergeInto(idx.osPairs, p, func(part *Index) []Pair { return part.osPairs[p] })
	}
	for s := 0; s < nS; s++ {
		mergeInto(idx.bySubject, s, func(part *Index) []Pair { return part.bySubject[s] })
	}
	for o := 0; o < nO; o++ {
		mergeInto(idx.byObject, o, func(part *Index) []Pair { return part.byObject[o] })
	}
	for _, part := range parts {
		idx.nTriples += part.nTriples
	}
	if err := idx.Validate(); err != nil {
		return nil, fmt.Errorf("bitmat: merged index invalid: %w", err)
	}
	return idx, nil
}

// mergeSortedPairLists merges k (A,B)-sorted pair lists into one sorted
// list. The inputs are pairwise disjoint (they come from disjoint triple
// sets), so a plain ascending merge yields the canonical order. With zero
// or one input list no allocation happens — the single list is shared.
func mergeSortedPairLists(lists [][]Pair) []Pair {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Pair, 0, total)
	cursors := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if cursors[i] >= len(l) {
				continue
			}
			if best < 0 || pairLess(l[cursors[i]], lists[best][cursors[best]]) {
				best = i
			}
		}
		out = append(out, lists[best][cursors[best]])
		cursors[best]++
	}
	return out
}

func pairLess(a, b Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}
