package bitmat

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/rdf"
)

func parallelFixture(n int) *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("n%03d", i%151)
		o := fmt.Sprintf("n%03d", (i*7+1)%151)
		g.Add(rdf.T(s, fmt.Sprintf("p%d", i%13), o))
		if i%5 == 0 {
			g.Add(rdf.TL(s, "label", fmt.Sprintf("v%d", i)))
		}
	}
	return g
}

func indexBytes(t *testing.T, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBuildParallelByteIdentical forces the parallel path on a small
// fixture and pins that every worker count persists to exactly the
// sequential build's bytes — the property SaveIndex snapshots rely on.
func TestBuildParallelByteIdentical(t *testing.T) {
	oldGate := parallelBuildMinTriples
	parallelBuildMinTriples = 1
	defer func() { parallelBuildMinTriples = oldGate }()

	g := parallelFixture(2500)
	seq, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatalf("sequential index invalid: %v", err)
	}
	want := indexBytes(t, seq)
	var wantDict bytes.Buffer
	if _, err := seq.Dictionary().WriteTo(&wantDict); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, -2} {
		par, err := BuildParallel(g, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("workers=%d: invalid index: %v", workers, err)
		}
		if got := indexBytes(t, par); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: index bytes differ from sequential build", workers)
		}
		var gotDict bytes.Buffer
		if _, err := par.Dictionary().WriteTo(&gotDict); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotDict.Bytes(), wantDict.Bytes()) {
			t.Fatalf("workers=%d: dictionary bytes differ from sequential build", workers)
		}
		if par.NumTriples() != seq.NumTriples() {
			t.Fatalf("workers=%d: %d triples, want %d", workers, par.NumTriples(), seq.NumTriples())
		}
	}
}

// TestBuildParallelEncodeError pins that a dictionary that cannot encode
// the triples fails the parallel build with the sequential build's error
// (the first failing triple in graph order).
func TestBuildParallelEncodeError(t *testing.T) {
	g := parallelFixture(300)
	// A dictionary over a strict subset of the graph cannot encode it.
	small := rdf.NewGraph()
	small.Add(g.Triples()[0])
	dict := small.Dictionary()

	_, seqErr := BuildWithDictionary(g, dict)
	if seqErr == nil {
		t.Fatal("sequential build must fail")
	}
	_, parErr := BuildParallelWithDictionary(g.Triples(), dict, 4)
	if parErr == nil {
		t.Fatal("parallel build must fail")
	}
	if parErr.Error() != seqErr.Error() {
		t.Fatalf("parallel error %q, want %q", parErr, seqErr)
	}
}

// TestValidateCatchesShapeDrift covers the SaveIndex assertion.
func TestValidateCatchesShapeDrift(t *testing.T) {
	g := parallelFixture(100)
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Validate(); err != nil {
		t.Fatalf("fresh index must validate: %v", err)
	}
	idx.nTriples++ // simulate a count bug
	if err := idx.Validate(); err == nil {
		t.Fatal("Validate must catch a triple-count mismatch")
	}
}
