package bitmat

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/rdf"
)

// Overlay is a delta layer over a base Index: a normalized set of inserted
// and deleted triples applied at materialization time. The engine queries
// it through the same Source surface as a compacted index, and every
// matrix, row, and cardinality it produces is identical to what a freshly
// rebuilt index over base ⊎ delta would produce — modulo the coordinate
// system, which keeps the base dictionary's IDs and appends new terms past
// the end of each dimension (see rdf.Dictionary.Extend).
//
// Invariants established by NewOverlay and relied on everywhere else:
// every inserted triple is absent from the base, every deleted triple is
// present in it, and the two sets are disjoint. That is what makes exact
// cardinalities a matter of counting list lengths.
type Overlay struct {
	base *Index
	dict *rdf.Dictionary // base dict extended with the delta's new terms

	insSet map[rdf.IDTriple]struct{}
	delSet map[rdf.IDTriple]struct{}

	// Delta pair lists in the same four sort orders the base keeps, grouped
	// by their owning key and (A,B)-sorted within each group.
	insSO, delSO map[rdf.ID][]Pair // per predicate: (S,O)
	insOS, delOS map[rdf.ID][]Pair // per predicate: (O,S)
	insPO, delPO map[rdf.ID][]Pair // per subject: (P,O)
	insPS, delPS map[rdf.ID][]Pair // per object: (P,S)

	nTriples int64

	// Merged views are built lazily, once per key, under mu. A merged list
	// is immutable after construction so Source calls can share it freely.
	mu       sync.Mutex
	mergedSO map[rdf.ID][]Pair
	mergedOS map[rdf.ID][]Pair
	mergedPO map[rdf.ID][]Pair
	mergedPS map[rdf.ID][]Pair
}

// NewOverlay builds the delta layer for a normalized update set: ins are
// triples to add that the base does not contain, del are triples to remove
// that it does contain. Both slices should be in a deterministic order
// (the store keeps them key-sorted) so the extended dictionary assigns the
// same IDs on every reconstruction of the same logical state.
func NewOverlay(base *Index, ins, del []rdf.Triple) (*Overlay, error) {
	dict := base.Dictionary().Extend(ins)
	ov := &Overlay{
		base:   base,
		dict:   dict,
		insSet: make(map[rdf.IDTriple]struct{}, len(ins)),
		delSet: make(map[rdf.IDTriple]struct{}, len(del)),
		insSO:  map[rdf.ID][]Pair{}, delSO: map[rdf.ID][]Pair{},
		insOS: map[rdf.ID][]Pair{}, delOS: map[rdf.ID][]Pair{},
		insPO: map[rdf.ID][]Pair{}, delPO: map[rdf.ID][]Pair{},
		insPS: map[rdf.ID][]Pair{}, delPS: map[rdf.ID][]Pair{},
	}
	for _, tr := range ins {
		it, err := dict.Encode(tr)
		if err != nil {
			return nil, fmt.Errorf("bitmat: overlay insert: %w", err)
		}
		if base.Contains(it.S, it.P, it.O) {
			return nil, fmt.Errorf("bitmat: overlay insert %v already in base", tr)
		}
		if _, dup := ov.insSet[it]; dup {
			return nil, fmt.Errorf("bitmat: duplicate overlay insert %v", tr)
		}
		ov.insSet[it] = struct{}{}
		ov.insSO[it.P] = append(ov.insSO[it.P], Pair{A: uint32(it.S), B: uint32(it.O)})
		ov.insOS[it.P] = append(ov.insOS[it.P], Pair{A: uint32(it.O), B: uint32(it.S)})
		ov.insPO[it.S] = append(ov.insPO[it.S], Pair{A: uint32(it.P), B: uint32(it.O)})
		ov.insPS[it.O] = append(ov.insPS[it.O], Pair{A: uint32(it.P), B: uint32(it.S)})
	}
	for _, tr := range del {
		it, err := dict.Encode(tr)
		if err != nil {
			return nil, fmt.Errorf("bitmat: overlay delete: %w", err)
		}
		if !base.Contains(it.S, it.P, it.O) {
			return nil, fmt.Errorf("bitmat: overlay delete %v not in base", tr)
		}
		if _, dup := ov.delSet[it]; dup {
			return nil, fmt.Errorf("bitmat: duplicate overlay delete %v", tr)
		}
		ov.delSet[it] = struct{}{}
		ov.delSO[it.P] = append(ov.delSO[it.P], Pair{A: uint32(it.S), B: uint32(it.O)})
		ov.delOS[it.P] = append(ov.delOS[it.P], Pair{A: uint32(it.O), B: uint32(it.S)})
		ov.delPO[it.S] = append(ov.delPO[it.S], Pair{A: uint32(it.P), B: uint32(it.O)})
		ov.delPS[it.O] = append(ov.delPS[it.O], Pair{A: uint32(it.P), B: uint32(it.S)})
	}
	for _, m := range []map[rdf.ID][]Pair{ov.insSO, ov.delSO, ov.insOS, ov.delOS, ov.insPO, ov.delPO, ov.insPS, ov.delPS} {
		for _, l := range m {
			sort.Slice(l, func(i, j int) bool {
				if l[i].A != l[j].A {
					return l[i].A < l[j].A
				}
				return l[i].B < l[j].B
			})
		}
	}
	ov.nTriples = base.NumTriples() + int64(len(ins)) - int64(len(del))
	return ov, nil
}

// Base returns the underlying compacted index.
func (ov *Overlay) Base() *Index { return ov.base }

// DeltaSize reports the number of delta entries (inserts plus deletes).
func (ov *Overlay) DeltaSize() int { return len(ov.insSet) + len(ov.delSet) }

// Dictionary returns the extended dictionary covering base and delta terms.
func (ov *Overlay) Dictionary() *rdf.Dictionary { return ov.dict }

// NumTriples reports the merged triple count.
func (ov *Overlay) NumTriples() int64 { return ov.nTriples }

// PredicateCardinality returns the merged triple count of predicate p.
func (ov *Overlay) PredicateCardinality(p rdf.ID) int {
	return ov.base.PredicateCardinality(p) + len(ov.insSO[p]) - len(ov.delSO[p])
}

// SubjectCardinality returns the merged triple count of subject s.
func (ov *Overlay) SubjectCardinality(s rdf.ID) int {
	return ov.base.SubjectCardinality(s) + len(ov.insPO[s]) - len(ov.delPO[s])
}

// ObjectCardinality returns the merged triple count of object o.
func (ov *Overlay) ObjectCardinality(o rdf.ID) int {
	return ov.base.ObjectCardinality(o) + len(ov.insPS[o]) - len(ov.delPS[o])
}

// mergePairs produces (base − del) ∪ ins in (A,B) order. All three inputs
// are (A,B)-sorted; del ⊆ base and ins ∩ base = ∅, which a single linear
// merge exploits. The result shares no backing with the inputs unless the
// delta for this key is empty, in which case the base list is returned
// as-is (it is immutable anyway).
func mergePairs(base, del, ins []Pair) []Pair {
	if len(del) == 0 && len(ins) == 0 {
		return base
	}
	out := make([]Pair, 0, len(base)-len(del)+len(ins))
	di, ii := 0, 0
	less := func(a, b Pair) bool {
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	}
	for _, pr := range base {
		if di < len(del) && del[di] == pr {
			di++
			continue
		}
		for ii < len(ins) && less(ins[ii], pr) {
			out = append(out, ins[ii])
			ii++
		}
		out = append(out, pr)
	}
	out = append(out, ins[ii:]...)
	return out
}

// merged returns the memoized merged list for key, building it on first use.
func (ov *Overlay) merged(cache *map[rdf.ID][]Pair, key rdf.ID, base []Pair, del, ins map[rdf.ID][]Pair) []Pair {
	ov.mu.Lock()
	defer ov.mu.Unlock()
	if *cache == nil {
		*cache = map[rdf.ID][]Pair{}
	}
	if l, ok := (*cache)[key]; ok {
		return l
	}
	l := mergePairs(base, del[key], ins[key])
	(*cache)[key] = l
	return l
}

func (ov *Overlay) soMerged(p rdf.ID) []Pair {
	return ov.merged(&ov.mergedSO, p, ov.base.SOPairs(p), ov.delSO, ov.insSO)
}

func (ov *Overlay) osMerged(p rdf.ID) []Pair {
	return ov.merged(&ov.mergedOS, p, ov.base.OSPairs(p), ov.delOS, ov.insOS)
}

func (ov *Overlay) subjectMerged(s rdf.ID) []Pair {
	return ov.merged(&ov.mergedPO, s, ov.base.SubjectPairs(s), ov.delPO, ov.insPO)
}

func (ov *Overlay) objectMerged(o rdf.ID) []Pair {
	return ov.merged(&ov.mergedPS, o, ov.base.ObjectPairs(o), ov.delPS, ov.insPS)
}

// SOPairs returns the merged (S,O) pairs of predicate p, matching
// Index.SOPairs. The slice is shared; do not mutate it.
func (ov *Overlay) SOPairs(p rdf.ID) []Pair {
	if p == 0 || int(p) > ov.dict.NumPredicates() {
		return nil
	}
	return ov.soMerged(p)
}

// OSPairs returns the merged (O,S) pairs of predicate p, matching
// Index.OSPairs. The slice is shared; do not mutate it.
func (ov *Overlay) OSPairs(p rdf.ID) []Pair {
	if p == 0 || int(p) > ov.dict.NumPredicates() {
		return nil
	}
	return ov.osMerged(p)
}

// SubjectPairs returns the merged (P,O) pairs of subject s, matching
// Index.SubjectPairs. The slice is shared; do not mutate it.
func (ov *Overlay) SubjectPairs(s rdf.ID) []Pair {
	if s == 0 || int(s) > ov.dict.NumSubjects() {
		return nil
	}
	return ov.subjectMerged(s)
}

// ObjectPairs returns the merged (P,S) pairs of object o, matching
// Index.ObjectPairs. The slice is shared; do not mutate it.
func (ov *Overlay) ObjectPairs(o rdf.ID) []Pair {
	if o == 0 || int(o) > ov.dict.NumObjects() {
		return nil
	}
	return ov.objectMerged(o)
}

// MatSO materializes the merged S-O BitMat of predicate p at the extended
// dictionary's dimensions.
func (ov *Overlay) MatSO(p rdf.ID) *Matrix { return ov.MatSOFiltered(p, nil, nil) }

// MatSOFiltered is MatSO with load-time row/column masks. Masks sized for
// the base dimensions are fine: bits beyond a mask's length read as clear,
// which correctly excludes appended terms the caller never bound.
func (ov *Overlay) MatSOFiltered(p rdf.ID, rowMask, colMask *bitvec.Bits) *Matrix {
	if p == 0 || int(p) > ov.dict.NumPredicates() {
		return NewMatrix(ov.dict.NumSubjects(), ov.dict.NumObjects())
	}
	return matrixFromSortedPairsFiltered(ov.dict.NumSubjects(), ov.dict.NumObjects(), ov.soMerged(p), rowMask, colMask)
}

// MatOS materializes the merged O-S BitMat of predicate p.
func (ov *Overlay) MatOS(p rdf.ID) *Matrix { return ov.MatOSFiltered(p, nil, nil) }

// MatOSFiltered is MatOS with load-time row/column masks.
func (ov *Overlay) MatOSFiltered(p rdf.ID, rowMask, colMask *bitvec.Bits) *Matrix {
	if p == 0 || int(p) > ov.dict.NumPredicates() {
		return NewMatrix(ov.dict.NumObjects(), ov.dict.NumSubjects())
	}
	return matrixFromSortedPairsFiltered(ov.dict.NumObjects(), ov.dict.NumSubjects(), ov.osMerged(p), rowMask, colMask)
}

// MatPS materializes the merged P-S BitMat of object o.
func (ov *Overlay) MatPS(o rdf.ID) *Matrix {
	if o == 0 || int(o) > ov.dict.NumObjects() {
		return NewMatrix(ov.dict.NumPredicates(), ov.dict.NumSubjects())
	}
	return matrixFromSortedPairs(ov.dict.NumPredicates(), ov.dict.NumSubjects(), ov.objectMerged(o))
}

// MatPO materializes the merged P-O BitMat of subject s.
func (ov *Overlay) MatPO(s rdf.ID) *Matrix {
	if s == 0 || int(s) > ov.dict.NumSubjects() {
		return NewMatrix(ov.dict.NumPredicates(), ov.dict.NumObjects())
	}
	return matrixFromSortedPairs(ov.dict.NumPredicates(), ov.dict.NumObjects(), ov.subjectMerged(s))
}

// RowPS returns the merged subjects S with (S p o) as a 1 x |Vs| matrix.
func (ov *Overlay) RowPS(p, o rdf.ID) *Matrix {
	m := NewMatrix(1, ov.dict.NumSubjects())
	if o == 0 || int(o) > ov.dict.NumObjects() || p == 0 {
		return m
	}
	var pos []uint32
	for _, pr := range pairRange(ov.objectMerged(o), uint32(p)) {
		pos = append(pos, pr.B-1)
	}
	if len(pos) > 0 {
		m.SetRow(0, bitvec.RowFromSortedPositions(ov.dict.NumSubjects(), pos))
	}
	return m
}

// RowPO returns the merged objects O with (s p O) as a 1 x |Vo| matrix.
func (ov *Overlay) RowPO(p, s rdf.ID) *Matrix {
	m := NewMatrix(1, ov.dict.NumObjects())
	if s == 0 || int(s) > ov.dict.NumSubjects() || p == 0 {
		return m
	}
	var pos []uint32
	for _, pr := range pairRange(ov.subjectMerged(s), uint32(p)) {
		pos = append(pos, pr.B-1)
	}
	if len(pos) > 0 {
		m.SetRow(0, bitvec.RowFromSortedPositions(ov.dict.NumObjects(), pos))
	}
	return m
}

// RowP returns the merged predicates linking subject s to object o as a
// 1 x |Vp| matrix.
func (ov *Overlay) RowP(s, o rdf.ID) *Matrix {
	m := NewMatrix(1, ov.dict.NumPredicates())
	if s == 0 || int(s) > ov.dict.NumSubjects() || o == 0 {
		return m
	}
	var pos []uint32
	for _, pr := range ov.subjectMerged(s) {
		if pr.B == uint32(o) {
			pos = append(pos, pr.A-1)
		}
	}
	if len(pos) > 0 {
		m.SetRow(0, bitvec.RowFromSortedPositions(ov.dict.NumPredicates(), pos))
	}
	return m
}

// Contains reports whether the merged view holds the exact triple (s p o).
func (ov *Overlay) Contains(s, p, o rdf.ID) bool {
	it := rdf.IDTriple{S: s, P: p, O: o}
	if _, ok := ov.insSet[it]; ok {
		return true
	}
	if _, ok := ov.delSet[it]; ok {
		return false
	}
	return ov.base.Contains(s, p, o)
}
