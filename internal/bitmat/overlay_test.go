package bitmat

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
)

// overlayFixture builds a base index plus an overlay applying ins/del, and
// the rebuilt index over the mutated graph for comparison.
func overlayFixture(t *testing.T, base []rdf.Triple, ins, del []rdf.Triple) (*Overlay, *Index) {
	t.Helper()
	g := rdf.NewGraph()
	g.AddAll(base)
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := NewOverlay(idx, ins, del)
	if err != nil {
		t.Fatal(err)
	}
	gm := g.Clone()
	gm.RemoveAll(del)
	gm.AddAll(ins)
	rebuilt, err := Build(gm)
	if err != nil {
		t.Fatal(err)
	}
	return ov, rebuilt
}

// triplesOf decodes every triple a Source exposes through its per-predicate
// pair lists into string form.
func triplesOf(t *testing.T, dict *rdf.Dictionary, pairs func(p rdf.ID) []Pair) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for p := 1; p <= dict.NumPredicates(); p++ {
		for _, pr := range pairs(rdf.ID(p)) {
			tr, err := dict.Decode(rdf.IDTriple{S: rdf.ID(pr.A), P: rdf.ID(p), O: rdf.ID(pr.B)})
			if err != nil {
				t.Fatal(err)
			}
			out[tr.String()] = true
		}
	}
	return out
}

func TestOverlayMatchesRebuiltIndex(t *testing.T) {
	base := []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("b", "p", "c"),
		rdf.T("a", "q", "c"),
		rdf.T("d", "q", "a"),
	}
	ins := []rdf.Triple{
		rdf.T("c", "p", "e"), // new term e as object; c gains subject role
		rdf.T("e", "q", "d"), // e gains subject role too -> ext pair
	}
	del := []rdf.Triple{rdf.T("b", "p", "c")}
	ov, rebuilt := overlayFixture(t, base, ins, del)

	got := triplesOf(t, ov.Dictionary(), ov.SOPairs)
	want := triplesOf(t, rebuilt.Dictionary(), rebuilt.SOPairs)
	if len(got) != len(want) {
		t.Fatalf("triple sets differ: overlay %d, rebuilt %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("rebuilt has %s, overlay does not", k)
		}
	}
	if ov.NumTriples() != rebuilt.NumTriples() {
		t.Errorf("NumTriples: overlay %d, rebuilt %d", ov.NumTriples(), rebuilt.NumTriples())
	}
	if ov.DeltaSize() != 3 {
		t.Errorf("DeltaSize: want 3, got %d", ov.DeltaSize())
	}
}

func TestOverlayCardinalities(t *testing.T) {
	base := []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("a", "p", "c"),
		rdf.T("b", "q", "c"),
	}
	ov, rebuilt := overlayFixture(t, base,
		[]rdf.Triple{rdf.T("a", "p", "d"), rdf.T("c", "q", "a")},
		[]rdf.Triple{rdf.T("a", "p", "b")})

	od, rd := ov.Dictionary(), rebuilt.Dictionary()
	for _, pred := range []string{"p", "q"} {
		if g, w := ov.PredicateCardinality(od.PredicateID(rdf.NewIRI(pred))),
			rebuilt.PredicateCardinality(rd.PredicateID(rdf.NewIRI(pred))); g != w {
			t.Errorf("PredicateCardinality(%s): overlay %d, rebuilt %d", pred, g, w)
		}
	}
	for _, subj := range []string{"a", "b", "c"} {
		if g, w := ov.SubjectCardinality(od.SubjectID(rdf.NewIRI(subj))),
			rebuilt.SubjectCardinality(rd.SubjectID(rdf.NewIRI(subj))); g != w {
			t.Errorf("SubjectCardinality(%s): overlay %d, rebuilt %d", subj, g, w)
		}
	}
	for _, obj := range []string{"a", "b", "c", "d"} {
		if g, w := ov.ObjectCardinality(od.ObjectID(rdf.NewIRI(obj))),
			rebuilt.ObjectCardinality(rd.ObjectID(rdf.NewIRI(obj))); g != w {
			t.Errorf("ObjectCardinality(%s): overlay %d, rebuilt %d", obj, g, w)
		}
	}
	// Contains must reflect the merged view, not the base.
	if ov.Contains(mustEncode(t, od, rdf.T("a", "p", "b"))) {
		t.Error("deleted triple still Contains")
	}
	if !ov.Contains(mustEncode(t, od, rdf.T("a", "p", "d"))) {
		t.Error("inserted triple not Contains")
	}
	if !ov.Contains(mustEncode(t, od, rdf.T("b", "q", "c"))) {
		t.Error("untouched base triple not Contains")
	}
}

func mustEncode(t *testing.T, d *rdf.Dictionary, tr rdf.Triple) (s, p, o rdf.ID) {
	t.Helper()
	it, err := d.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	return it.S, it.P, it.O
}

func TestOverlayRejectsInvalidDelta(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.T("a", "p", "b"))
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		ins, del []rdf.Triple
	}{
		{"insert already in base", []rdf.Triple{rdf.T("a", "p", "b")}, nil},
		{"delete not in base", nil, []rdf.Triple{rdf.T("x", "p", "y")}},
		{"duplicate insert", []rdf.Triple{rdf.T("c", "p", "d"), rdf.T("c", "p", "d")}, nil},
		{"duplicate delete", nil, []rdf.Triple{rdf.T("a", "p", "b"), rdf.T("a", "p", "b")}},
	}
	for _, tc := range cases {
		if _, err := NewOverlay(idx, tc.ins, tc.del); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

func TestOverlayRandomizedAgainstRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ent := func() string { return fmt.Sprintf("e%d", rng.Intn(14)) }
	pred := func() string { return fmt.Sprintf("p%d", rng.Intn(3)) }
	for round := 0; round < 25; round++ {
		g := rdf.NewGraph()
		for i := 0; i < 20; i++ {
			g.Add(rdf.T(ent(), pred(), ent()))
		}
		gm := g.Clone()
		for i := 0; i < 6; i++ {
			if rng.Intn(2) == 0 && gm.Len() > 0 {
				ts := gm.Triples()
				gm.Remove(ts[rng.Intn(len(ts))])
			} else {
				gm.Add(rdf.T(ent(), pred(), ent()))
			}
		}
		var ins, del []rdf.Triple
		for _, tr := range gm.Triples() {
			if !g.Contains(tr) {
				ins = append(ins, tr)
			}
		}
		for _, tr := range g.Triples() {
			if !gm.Contains(tr) {
				del = append(del, tr)
			}
		}
		idx, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		ov, err := NewOverlay(idx, ins, del)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := Build(gm)
		if err != nil {
			t.Fatal(err)
		}
		got := triplesOf(t, ov.Dictionary(), ov.SOPairs)
		want := triplesOf(t, rebuilt.Dictionary(), rebuilt.SOPairs)
		if len(got) != len(want) {
			t.Fatalf("round %d: overlay %d triples, rebuilt %d", round, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("round %d: overlay missing %s", round, k)
			}
		}
		// The OS orientation and per-subject/per-object postings must agree
		// with the SO view on cardinality sums.
		var so, os int
		for p := 1; p <= ov.Dictionary().NumPredicates(); p++ {
			so += len(ov.SOPairs(rdf.ID(p)))
			os += int(ov.MatOS(rdf.ID(p)).Count())
		}
		if so != os || int64(so) != ov.NumTriples() {
			t.Fatalf("round %d: SO=%d OS=%d NumTriples=%d", round, so, os, ov.NumTriples())
		}
	}
}
