package bitmat

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/rdf"
)

// Index is the full BitMat index of one RDF graph. It keeps, per predicate,
// the triple pairs in both (S,O) and (O,S) sort orders, and per subject /
// per object the posting lists that back the P-O and P-S BitMat families.
// Query-time matrices are materialized on demand from these postings: that
// materialization is the analogue of the paper's "load the BitMats
// associated with the triple patterns" (the Tinit phase) and is what the
// engine measures as init time.
type Index struct {
	dict *rdf.Dictionary

	// soPairs[p-1] holds the (S,O) pairs of predicate p sorted by (S,O);
	// osPairs[p-1] the (O,S) pairs sorted by (O,S).
	soPairs [][]Pair
	osPairs [][]Pair

	// bySubject[s-1] holds (P,O) pairs sorted by (P,O); byObject[o-1] holds
	// (P,S) pairs sorted by (P,S).
	bySubject [][]Pair
	byObject  [][]Pair

	nTriples int64
}

// Build constructs the index for a graph. The dictionary is built from the
// same graph, so every triple encodes.
func Build(g *rdf.Graph) (*Index, error) {
	dict := g.Dictionary()
	return BuildWithDictionary(g, dict)
}

// BuildWithDictionary constructs the index using a pre-built dictionary.
func BuildWithDictionary(g *rdf.Graph, dict *rdf.Dictionary) (*Index, error) {
	idx := &Index{
		dict:      dict,
		soPairs:   make([][]Pair, dict.NumPredicates()),
		osPairs:   make([][]Pair, dict.NumPredicates()),
		bySubject: make([][]Pair, dict.NumSubjects()),
		byObject:  make([][]Pair, dict.NumObjects()),
	}
	for _, tr := range g.Triples() {
		it, err := dict.Encode(tr)
		if err != nil {
			return nil, fmt.Errorf("bitmat: %w", err)
		}
		p, s, o := it.P-1, uint32(it.S), uint32(it.O)
		idx.soPairs[p] = append(idx.soPairs[p], Pair{A: s, B: o})
		idx.osPairs[p] = append(idx.osPairs[p], Pair{A: o, B: s})
		idx.bySubject[it.S-1] = append(idx.bySubject[it.S-1], Pair{A: uint32(it.P), B: o})
		idx.byObject[it.O-1] = append(idx.byObject[it.O-1], Pair{A: uint32(it.P), B: s})
		idx.nTriples++
	}
	sortPairs := func(lists [][]Pair) {
		for _, l := range lists {
			sort.Slice(l, func(i, j int) bool {
				if l[i].A != l[j].A {
					return l[i].A < l[j].A
				}
				return l[i].B < l[j].B
			})
		}
	}
	sortPairs(idx.soPairs)
	sortPairs(idx.osPairs)
	sortPairs(idx.bySubject)
	sortPairs(idx.byObject)
	return idx, nil
}

// Dictionary returns the index's term dictionary.
func (idx *Index) Dictionary() *rdf.Dictionary { return idx.dict }

// Validate checks the structural invariants the persist format relies on:
// the pair-table shapes match the dictionary dimensions and the per-
// predicate tables account for exactly NumTriples pairs. Both the
// sequential and the parallel build must satisfy it; SaveIndex asserts it
// before writing so a build-path bug cannot silently corrupt a snapshot.
func (idx *Index) Validate() error {
	if idx.dict == nil {
		return fmt.Errorf("bitmat: index has no dictionary")
	}
	if len(idx.soPairs) != idx.dict.NumPredicates() || len(idx.osPairs) != idx.dict.NumPredicates() {
		return fmt.Errorf("bitmat: predicate tables (%d,%d) do not match dictionary (%d predicates)",
			len(idx.soPairs), len(idx.osPairs), idx.dict.NumPredicates())
	}
	if len(idx.bySubject) != idx.dict.NumSubjects() {
		return fmt.Errorf("bitmat: subject postings (%d) do not match dictionary (%d subjects)",
			len(idx.bySubject), idx.dict.NumSubjects())
	}
	if len(idx.byObject) != idx.dict.NumObjects() {
		return fmt.Errorf("bitmat: object postings (%d) do not match dictionary (%d objects)",
			len(idx.byObject), idx.dict.NumObjects())
	}
	var total int64
	for p, pairs := range idx.soPairs {
		if len(pairs) != len(idx.osPairs[p]) {
			return fmt.Errorf("bitmat: predicate %d has %d S-O pairs but %d O-S pairs", p+1, len(pairs), len(idx.osPairs[p]))
		}
		total += int64(len(pairs))
	}
	if total != idx.nTriples {
		return fmt.Errorf("bitmat: pair tables hold %d triples, header says %d", total, idx.nTriples)
	}
	return nil
}

// NumTriples reports the number of indexed triples.
func (idx *Index) NumTriples() int64 { return idx.nTriples }

// PredicateCardinality returns the number of triples with predicate p,
// which is the selectivity statistic of a (?a :p ?b) pattern.
func (idx *Index) PredicateCardinality(p rdf.ID) int {
	if p == 0 || int(p) > len(idx.soPairs) {
		return 0
	}
	return len(idx.soPairs[p-1])
}

// SubjectCardinality returns the number of triples with subject s.
func (idx *Index) SubjectCardinality(s rdf.ID) int {
	if s == 0 || int(s) > len(idx.bySubject) {
		return 0
	}
	return len(idx.bySubject[s-1])
}

// ObjectCardinality returns the number of triples with object o.
func (idx *Index) ObjectCardinality(o rdf.ID) int {
	if o == 0 || int(o) > len(idx.byObject) {
		return 0
	}
	return len(idx.byObject[o-1])
}

// MatSO materializes the S-O BitMat of predicate p: rows are subject IDs,
// columns object IDs.
func (idx *Index) MatSO(p rdf.ID) *Matrix {
	return idx.MatSOFiltered(p, nil, nil)
}

// MatSOFiltered materializes the S-O BitMat of predicate p keeping only
// pairs whose row (subject) and column (object) bits are set in the
// respective masks; a nil mask means no restriction. This is the paper's
// "active pruning while loading": selective bindings from already-loaded
// patterns skip most of the BitMat before it is ever built.
func (idx *Index) MatSOFiltered(p rdf.ID, rowMask, colMask *bitvec.Bits) *Matrix {
	if p == 0 || int(p) > len(idx.soPairs) {
		return NewMatrix(idx.dict.NumSubjects(), idx.dict.NumObjects())
	}
	return matrixFromSortedPairsFiltered(idx.dict.NumSubjects(), idx.dict.NumObjects(), idx.soPairs[p-1], rowMask, colMask)
}

// MatOS materializes the O-S BitMat of predicate p (the transpose of
// MatSO): rows are object IDs, columns subject IDs.
func (idx *Index) MatOS(p rdf.ID) *Matrix {
	return idx.MatOSFiltered(p, nil, nil)
}

// MatOSFiltered is MatOS with load-time row/column masks.
func (idx *Index) MatOSFiltered(p rdf.ID, rowMask, colMask *bitvec.Bits) *Matrix {
	if p == 0 || int(p) > len(idx.osPairs) {
		return NewMatrix(idx.dict.NumObjects(), idx.dict.NumSubjects())
	}
	return matrixFromSortedPairsFiltered(idx.dict.NumObjects(), idx.dict.NumSubjects(), idx.osPairs[p-1], rowMask, colMask)
}

// MatPS materializes the P-S BitMat of object o: rows are predicate IDs,
// columns subject IDs.
func (idx *Index) MatPS(o rdf.ID) *Matrix {
	if o == 0 || int(o) > len(idx.byObject) {
		return NewMatrix(idx.dict.NumPredicates(), idx.dict.NumSubjects())
	}
	return matrixFromSortedPairs(idx.dict.NumPredicates(), idx.dict.NumSubjects(), idx.byObject[o-1])
}

// MatPO materializes the P-O BitMat of subject s: rows are predicate IDs,
// columns object IDs.
func (idx *Index) MatPO(s rdf.ID) *Matrix {
	if s == 0 || int(s) > len(idx.bySubject) {
		return NewMatrix(idx.dict.NumPredicates(), idx.dict.NumObjects())
	}
	return matrixFromSortedPairs(idx.dict.NumPredicates(), idx.dict.NumObjects(), idx.bySubject[s-1])
}

// RowPS returns the single row of the P-S BitMat of object o for predicate
// p: the subjects S with (S p o), as a 1 x |Vs| matrix. This is the load
// path for triple patterns of the form (?var :p :o).
func (idx *Index) RowPS(p, o rdf.ID) *Matrix {
	m := NewMatrix(1, idx.dict.NumSubjects())
	if o == 0 || int(o) > len(idx.byObject) || p == 0 {
		return m
	}
	var pos []uint32
	for _, pr := range pairRange(idx.byObject[o-1], uint32(p)) {
		pos = append(pos, pr.B-1)
	}
	if len(pos) > 0 {
		// pairRange walks the (A,B)-sorted postings, so B is ascending.
		m.SetRow(0, bitvec.RowFromSortedPositions(idx.dict.NumSubjects(), pos))
	}
	return m
}

// RowPO returns the single row of the P-O BitMat of subject s for predicate
// p: the objects O with (s p O), as a 1 x |Vo| matrix. This is the load path
// for triple patterns of the form (:s :p ?var).
func (idx *Index) RowPO(p, s rdf.ID) *Matrix {
	m := NewMatrix(1, idx.dict.NumObjects())
	if s == 0 || int(s) > len(idx.bySubject) || p == 0 {
		return m
	}
	var pos []uint32
	for _, pr := range pairRange(idx.bySubject[s-1], uint32(p)) {
		pos = append(pos, pr.B-1)
	}
	if len(pos) > 0 {
		// pairRange walks the (A,B)-sorted postings, so B is ascending.
		m.SetRow(0, bitvec.RowFromSortedPositions(idx.dict.NumObjects(), pos))
	}
	return m
}

// SOPairs returns predicate p's (subject, object) pairs sorted by (S,O).
// The slice is shared; callers must not mutate it. This is the "predicate
// table ordered on S-O" view the relational baseline scans.
func (idx *Index) SOPairs(p rdf.ID) []Pair {
	if p == 0 || int(p) > len(idx.soPairs) {
		return nil
	}
	return idx.soPairs[p-1]
}

// OSPairs returns predicate p's (object, subject) pairs sorted by (O,S),
// the baseline's O-S index.
func (idx *Index) OSPairs(p rdf.ID) []Pair {
	if p == 0 || int(p) > len(idx.osPairs) {
		return nil
	}
	return idx.osPairs[p-1]
}

// SubjectPairs returns subject s's (predicate, object) pairs sorted by
// (P,O).
func (idx *Index) SubjectPairs(s rdf.ID) []Pair {
	if s == 0 || int(s) > len(idx.bySubject) {
		return nil
	}
	return idx.bySubject[s-1]
}

// ObjectPairs returns object o's (predicate, subject) pairs sorted by
// (P,S).
func (idx *Index) ObjectPairs(o rdf.ID) []Pair {
	if o == 0 || int(o) > len(idx.byObject) {
		return nil
	}
	return idx.byObject[o-1]
}

// PairRange returns the sub-slice of pairs whose A field equals key,
// relying on the (A,B) sort order.
func PairRange(pairs []Pair, key uint32) []Pair {
	return pairRange(pairs, key)
}

// RowP returns the predicates linking subject s to object o as a 1 x |Vp|
// matrix, the load path for triple patterns of the form (:s ?var :o).
func (idx *Index) RowP(s, o rdf.ID) *Matrix {
	m := NewMatrix(1, idx.dict.NumPredicates())
	if s == 0 || int(s) > len(idx.bySubject) || o == 0 {
		return m
	}
	var pos []uint32
	for _, pr := range idx.bySubject[s-1] {
		if pr.B == uint32(o) {
			pos = append(pos, pr.A-1)
		}
	}
	if len(pos) > 0 {
		// bySubject is (P,O)-sorted and duplicate-free: filtering on one
		// object keeps the predicate positions strictly ascending.
		m.SetRow(0, bitvec.RowFromSortedPositions(idx.dict.NumPredicates(), pos))
	}
	return m
}

// Contains reports whether the exact triple (s p o) is indexed, the load
// path for triple patterns with no variables.
func (idx *Index) Contains(s, p, o rdf.ID) bool {
	if s == 0 || p == 0 || o == 0 || int(s) > len(idx.bySubject) {
		return false
	}
	for _, pr := range pairRange(idx.bySubject[s-1], uint32(p)) {
		if pr.B == uint32(o) {
			return true
		}
	}
	return false
}

// pairRange returns the slice of pairs whose A field equals key, relying on
// the (A,B) sort order.
func pairRange(pairs []Pair, key uint32) []Pair {
	lo := sort.Search(len(pairs), func(i int) bool { return pairs[i].A >= key })
	hi := lo
	for hi < len(pairs) && pairs[hi].A == key {
		hi++
	}
	return pairs[lo:hi]
}
