package results

import (
	"sort"
	"strconv"
	"strings"
)

// mediaTypes maps the media types a SPARQL Protocol client may send in
// Accept to the format that satisfies them. The generic JSON and XML
// types are accepted as aliases because BI tools and curl one-liners use
// them far more often than the registered sparql-results types.
var mediaTypes = map[string]Format{
	"application/sparql-results+json": JSON,
	"application/json":                JSON,
	"text/json":                       JSON,
	"application/sparql-results+xml":  XML,
	"application/xml":                 XML,
	"text/xml":                        XML,
	"text/csv":                        CSV,
	"application/csv":                 CSV,
	"text/tab-separated-values":       TSV,
}

// preference breaks q-value ties: the richer, lossless formats win.
var preference = map[Format]int{JSON: 0, XML: 1, TSV: 2, CSV: 3}

// Negotiate picks the result format for an Accept header value, following
// RFC 9110 semantics: the supported media range with the highest q-value
// wins; more specific ranges beat wildcards at equal q; remaining ties go
// to JSON > XML > TSV > CSV. The wildcards */* and application/* resolve
// to JSON, text/* to CSV. An empty header means "anything" and yields
// JSON. ok is false when the header names only unsupported types — the
// 406 Not Acceptable case.
func Negotiate(accept string) (f Format, ok bool) {
	accept = strings.TrimSpace(accept)
	if accept == "" {
		return JSON, true
	}
	type candidate struct {
		f           Format
		q           float64
		specificity int // 2 = exact type, 1 = type/*, 0 = */*
	}
	var cands []candidate
	for _, part := range strings.Split(accept, ",") {
		fields := strings.Split(part, ";")
		mt := strings.ToLower(strings.TrimSpace(fields[0]))
		if mt == "" {
			continue
		}
		q := 1.0
		for _, p := range fields[1:] {
			p = strings.TrimSpace(p)
			if v, found := strings.CutPrefix(p, "q="); found {
				if parsed, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
					q = parsed
				}
			}
		}
		if q <= 0 {
			continue // explicitly refused
		}
		switch mt {
		case "*/*":
			cands = append(cands, candidate{JSON, q, 0})
		case "application/*":
			cands = append(cands, candidate{JSON, q, 1})
		case "text/*":
			cands = append(cands, candidate{CSV, q, 1})
		default:
			if fmt, supported := mediaTypes[mt]; supported {
				cands = append(cands, candidate{fmt, q, 2})
			}
		}
	}
	if len(cands) == 0 {
		return JSON, false
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].q != cands[j].q {
			return cands[i].q > cands[j].q
		}
		if cands[i].specificity != cands[j].specificity {
			return cands[i].specificity > cands[j].specificity
		}
		return preference[cands[i].f] < preference[cands[j].f]
	})
	return cands[0].f, true
}
