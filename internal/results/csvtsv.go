package results

import (
	"io"
	"strings"

	"repro/internal/rdf"
)

// csvWriter emits the SPARQL 1.1 CSV results format
// (https://www.w3.org/TR/sparql11-results-csv-tsv/): a header of bare
// variable names, then one RFC 4180 record per solution with terms in
// their raw lexical form (IRIs unbracketed, literals unquoted, blank
// nodes as _:label) and unbound variables as empty fields. Rows end in
// CRLF. ASK has no CSV form in the spec; Boolean writes a single
// true/false record as a pragmatic extension.
type csvWriter struct {
	w    io.Writer
	cols int
}

func (c *csvWriter) Begin(vars []string) error {
	c.cols = len(vars)
	for i, v := range vars {
		if i > 0 {
			if _, err := io.WriteString(c.w, ","); err != nil {
				return err
			}
		}
		if err := writeCSVField(c.w, v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(c.w, "\r\n")
	return err
}

func (c *csvWriter) Row(row []rdf.Term) error {
	for i := 0; i < c.cols; i++ {
		if i > 0 {
			if _, err := io.WriteString(c.w, ","); err != nil {
				return err
			}
		}
		if i >= len(row) || row[i].IsZero() {
			continue // unbound: empty field
		}
		if err := writeCSVField(c.w, rawValue(row[i])); err != nil {
			return err
		}
	}
	_, err := io.WriteString(c.w, "\r\n")
	return err
}

func (c *csvWriter) End() error { return nil }

func (c *csvWriter) Boolean(b bool) error {
	s := "false\r\n"
	if b {
		s = "true\r\n"
	}
	_, err := io.WriteString(c.w, s)
	return err
}

// rawValue is the CSV rendering of a term: the lexical form without any
// RDF syntax, except blank nodes which keep their _: prefix.
func rawValue(t rdf.Term) string {
	if t.Kind == rdf.Blank {
		return "_:" + t.Value
	}
	return t.Value
}

// writeCSVField quotes s per RFC 4180 when it contains a comma, quote, or
// line break, doubling embedded quotes.
func writeCSVField(w io.Writer, s string) error {
	if !strings.ContainsAny(s, ",\"\r\n") {
		_, err := io.WriteString(w, s)
		return err
	}
	if _, err := io.WriteString(w, `"`); err != nil {
		return err
	}
	if _, err := io.WriteString(w, strings.ReplaceAll(s, `"`, `""`)); err != nil {
		return err
	}
	_, err := io.WriteString(w, `"`)
	return err
}

// tsvWriter emits the SPARQL 1.1 TSV results format: a header of
// ?-prefixed variable names, then one LF-terminated record per solution
// with terms in SPARQL (N-Triples) syntax — tabs and newlines inside
// literals are backslash-escaped by that syntax, so a record never spans
// lines. Unbound variables are empty fields. Boolean writes true/false as
// a pragmatic extension (the spec defines TSV for SELECT only).
type tsvWriter struct {
	w    io.Writer
	cols int
}

func (t *tsvWriter) Begin(vars []string) error {
	t.cols = len(vars)
	for i, v := range vars {
		if i > 0 {
			if _, err := io.WriteString(t.w, "\t"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(t.w, "?"+v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(t.w, "\n")
	return err
}

func (t *tsvWriter) Row(row []rdf.Term) error {
	for i := 0; i < t.cols; i++ {
		if i > 0 {
			if _, err := io.WriteString(t.w, "\t"); err != nil {
				return err
			}
		}
		if i >= len(row) || row[i].IsZero() {
			continue // unbound: empty field
		}
		if _, err := io.WriteString(t.w, row[i].String()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(t.w, "\n")
	return err
}

func (t *tsvWriter) End() error { return nil }

func (t *tsvWriter) Boolean(b bool) error {
	s := "false\n"
	if b {
		s = "true\n"
	}
	_, err := io.WriteString(t.w, s)
	return err
}
