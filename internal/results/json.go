package results

import (
	"encoding/json"
	"io"

	"repro/internal/rdf"
)

// jsonWriter emits SPARQL 1.1 Query Results JSON
// (https://www.w3.org/TR/sparql11-results-json/). The document is written
// incrementally: head on Begin, one binding object per Row, the closing
// braces on End.
type jsonWriter struct {
	w     io.Writer
	vars  []string
	first bool
}

func (j *jsonWriter) Begin(vars []string) error {
	j.vars = vars
	j.first = true
	if _, err := io.WriteString(j.w, `{"head":{"vars":[`); err != nil {
		return err
	}
	for i, v := range vars {
		if i > 0 {
			if _, err := io.WriteString(j.w, ","); err != nil {
				return err
			}
		}
		if err := writeJSONString(j.w, v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(j.w, `]},"results":{"bindings":[`)
	return err
}

func (j *jsonWriter) Row(row []rdf.Term) error {
	if j.first {
		j.first = false
	} else if _, err := io.WriteString(j.w, ","); err != nil {
		return err
	}
	if _, err := io.WriteString(j.w, "\n{"); err != nil {
		return err
	}
	wrote := false
	for i, v := range j.vars {
		if i >= len(row) || row[i].IsZero() {
			continue // unbound: the variable is absent from the binding
		}
		if wrote {
			if _, err := io.WriteString(j.w, ","); err != nil {
				return err
			}
		}
		wrote = true
		if err := writeJSONString(j.w, v); err != nil {
			return err
		}
		if _, err := io.WriteString(j.w, ":"); err != nil {
			return err
		}
		if err := writeJSONTerm(j.w, row[i]); err != nil {
			return err
		}
	}
	_, err := io.WriteString(j.w, "}")
	return err
}

func (j *jsonWriter) End() error {
	_, err := io.WriteString(j.w, "\n]}}\n")
	return err
}

func (j *jsonWriter) Boolean(b bool) error {
	doc := `{"head":{},"boolean":false}` + "\n"
	if b {
		doc = `{"head":{},"boolean":true}` + "\n"
	}
	_, err := io.WriteString(j.w, doc)
	return err
}

// writeJSONTerm writes one RDF term as a result-set binding object.
func writeJSONTerm(w io.Writer, t rdf.Term) error {
	var typ string
	switch t.Kind {
	case rdf.IRI:
		typ = "uri"
	case rdf.Blank:
		typ = "bnode"
	default:
		typ = "literal"
	}
	if _, err := io.WriteString(w, `{"type":"`+typ+`","value":`); err != nil {
		return err
	}
	if err := writeJSONString(w, t.Value); err != nil {
		return err
	}
	if t.Kind == rdf.Literal && t.Lang != "" {
		if _, err := io.WriteString(w, `,"xml:lang":`); err != nil {
			return err
		}
		if err := writeJSONString(w, t.Lang); err != nil {
			return err
		}
	} else if t.Kind == rdf.Literal && t.Datatype != "" {
		if _, err := io.WriteString(w, `,"datatype":`); err != nil {
			return err
		}
		if err := writeJSONString(w, t.Datatype); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

// writeJSONString writes s as a JSON string literal, with full escaping.
func writeJSONString(w io.Writer, s string) error {
	b, err := json.Marshal(s)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
