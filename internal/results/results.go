// Package results serializes SPARQL query results in the W3C interchange
// formats — SPARQL 1.1 Query Results JSON, XML, CSV, and TSV — streaming
// row by row so a SELECT over millions of solutions serializes in constant
// memory. Unbound variables produced by OPTIONAL patterns are rendered in
// each format's native way (absent binding in JSON/XML, empty field in
// CSV/TSV), and ASK queries serialize as boolean documents.
package results

import (
	"fmt"
	"io"

	"repro/internal/rdf"
)

// Format identifies one of the supported result serializations.
type Format int

const (
	// JSON is SPARQL 1.1 Query Results JSON (application/sparql-results+json).
	JSON Format = iota
	// XML is SPARQL Query Results XML (application/sparql-results+xml).
	XML
	// CSV is the SPARQL 1.1 CSV results format (text/csv): raw lexical
	// values, RFC 4180 quoting, CRLF row terminators.
	CSV
	// TSV is the SPARQL 1.1 TSV results format
	// (text/tab-separated-values): terms in SPARQL/Turtle syntax.
	TSV
)

// String names the format for logs and metrics.
func (f Format) String() string {
	switch f {
	case JSON:
		return "json"
	case XML:
		return "xml"
	case CSV:
		return "csv"
	case TSV:
		return "tsv"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ContentType returns the media type a server should set for the format.
func (f Format) ContentType() string {
	switch f {
	case JSON:
		return "application/sparql-results+json"
	case XML:
		return "application/sparql-results+xml"
	case CSV:
		return "text/csv; charset=utf-8"
	case TSV:
		return "text/tab-separated-values; charset=utf-8"
	}
	return "application/octet-stream"
}

// Writer streams one result document to an underlying io.Writer.
//
// For a SELECT result the call sequence is Begin (exactly once, with the
// result header in column order), then Row once per solution — each row
// aligned with the Begin vars, zero Terms marking unbound OPTIONAL
// variables — then End. Rows are written as they arrive; nothing is
// buffered beyond the current row, so the consumer controls memory.
//
// For an ASK result, Boolean writes the complete document by itself;
// Begin/Row/End must not be used on the same Writer.
type Writer interface {
	Begin(vars []string) error
	Row(row []rdf.Term) error
	End() error
	Boolean(b bool) error
}

// NewWriter returns a streaming serializer for the format writing to w.
// The Writer does not buffer or close w; wrap w in a bufio.Writer when
// syscall-sized writes matter.
func NewWriter(f Format, w io.Writer) Writer {
	switch f {
	case XML:
		return &xmlWriter{w: w}
	case CSV:
		return &csvWriter{w: w}
	case TSV:
		return &tsvWriter{w: w}
	default:
		return &jsonWriter{w: w}
	}
}
