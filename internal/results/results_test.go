package results

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fixture is the serializer torture row set: IRIs vs plain, typed, and
// language-tagged literals, a blank node, literals needing escaping in
// every format (quotes, newlines, tabs, commas, unicode, XML metachars),
// and OPTIONAL-produced unbound cells, including a row that is mostly
// NULL.
func fixtureVars() []string { return []string{"s", "v", "w"} }

func fixtureRows() [][]rdf.Term {
	return [][]rdf.Term{
		{
			rdf.NewIRI("http://example.org/a"),
			rdf.NewLiteral("plain"),
			rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		},
		{
			rdf.NewIRI("http://example.org/b?x=1&y=2"),
			rdf.NewLiteral("he said \"hi\",\nthen <left>\ta☃"),
			rdf.NewLangLiteral("bonjour", "fr"),
		},
		{
			rdf.NewBlank("b0"),
			{}, // unbound (OPTIONAL miss)
			rdf.NewLiteral("a,b"),
		},
		{
			rdf.NewIRI("http://example.org/only"),
			{}, // unbound
			{}, // unbound
		},
	}
}

var formats = []Format{JSON, XML, CSV, TSV}

func serialize(t *testing.T, f Format, vars []string, rows [][]rdf.Term) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(f, &buf)
	if err := w.Begin(vars); err != nil {
		t.Fatalf("%v Begin: %v", f, err)
	}
	for _, r := range rows {
		if err := w.Row(r); err != nil {
			t.Fatalf("%v Row: %v", f, err)
		}
	}
	if err := w.End(); err != nil {
		t.Fatalf("%v End: %v", f, err)
	}
	return buf.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run go test -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n got: %q\nwant: %q", name, got, want)
	}
}

func TestGoldenSelect(t *testing.T) {
	for _, f := range formats {
		checkGolden(t, "select."+f.String(), serialize(t, f, fixtureVars(), fixtureRows()))
	}
}

func TestGoldenZeroRows(t *testing.T) {
	for _, f := range formats {
		checkGolden(t, "empty."+f.String(), serialize(t, f, []string{"a", "b"}, nil))
	}
}

func TestGoldenAsk(t *testing.T) {
	for _, f := range formats {
		for _, b := range []bool{true, false} {
			var buf bytes.Buffer
			if err := NewWriter(f, &buf).Boolean(b); err != nil {
				t.Fatalf("%v Boolean: %v", f, err)
			}
			name := "ask_false." + f.String()
			if b {
				name = "ask_true." + f.String()
			}
			checkGolden(t, name, buf.Bytes())
		}
	}
}

// TestJSONWellFormed re-parses the streamed JSON and checks the document
// structure: vars in order, unbound variables absent, term typing intact.
func TestJSONWellFormed(t *testing.T) {
	raw := serialize(t, JSON, fixtureVars(), fixtureRows())
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Type     string `json:"type"`
				Value    string `json:"value"`
				Lang     string `json:"xml:lang"`
				Datatype string `json:"datatype"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("streamed JSON does not parse: %v\n%s", err, raw)
	}
	if got, want := strings.Join(doc.Head.Vars, ","), "s,v,w"; got != want {
		t.Errorf("head.vars = %q, want %q", got, want)
	}
	if len(doc.Results.Bindings) != 4 {
		t.Fatalf("bindings = %d, want 4", len(doc.Results.Bindings))
	}
	b1 := doc.Results.Bindings[1]
	if b1["v"].Value != "he said \"hi\",\nthen <left>\ta☃" {
		t.Errorf("escaped literal round-trip failed: %q", b1["v"].Value)
	}
	if b1["w"].Lang != "fr" {
		t.Errorf("lang tag lost: %+v", b1["w"])
	}
	b2 := doc.Results.Bindings[2]
	if _, present := b2["v"]; present {
		t.Errorf("unbound var serialized in JSON binding: %+v", b2)
	}
	if b2["s"].Type != "bnode" {
		t.Errorf("blank node type = %q, want bnode", b2["s"].Type)
	}
	if doc.Results.Bindings[0]["w"].Datatype != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Errorf("datatype lost: %+v", doc.Results.Bindings[0]["w"])
	}
}

// TestXMLWellFormed checks the streamed XML parses and keeps the escaped
// literal intact.
func TestXMLWellFormed(t *testing.T) {
	raw := serialize(t, XML, fixtureVars(), fixtureRows())
	var doc struct {
		XMLName xml.Name `xml:"sparql"`
		Head    struct {
			Variables []struct {
				Name string `xml:"name,attr"`
			} `xml:"variable"`
		} `xml:"head"`
		Results struct {
			Results []struct {
				Bindings []struct {
					Name    string `xml:"name,attr"`
					URI     string `xml:"uri"`
					BNode   string `xml:"bnode"`
					Literal string `xml:"literal"`
				} `xml:"binding"`
			} `xml:"result"`
		} `xml:"results"`
	}
	if err := xml.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("streamed XML does not parse: %v\n%s", err, raw)
	}
	if len(doc.Head.Variables) != 3 || len(doc.Results.Results) != 4 {
		t.Fatalf("head/results shape wrong: %+v", doc)
	}
	r1 := doc.Results.Results[1]
	if r1.Bindings[1].Literal != "he said \"hi\",\nthen <left>\ta☃" {
		t.Errorf("escaped literal round-trip failed: %q", r1.Bindings[1].Literal)
	}
	if got := len(doc.Results.Results[3].Bindings); got != 1 {
		t.Errorf("mostly-NULL row has %d bindings, want 1", got)
	}
}

// TestCSVQuoting pins the RFC 4180 treatment of embedded commas, quotes,
// and newlines, and that unbound cells are empty fields.
func TestCSVQuoting(t *testing.T) {
	raw := string(serialize(t, CSV, fixtureVars(), fixtureRows()))
	lines := strings.Split(raw, "\r\n")
	if lines[0] != "s,v,w" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(raw, `"he said ""hi"",`) {
		t.Errorf("quote doubling missing:\n%s", raw)
	}
	// The unbound middle cell of row 3 must be an empty field between the
	// blank node and the quoted a,b literal.
	if !strings.Contains(raw, "_:b0,,\"a,b\"") {
		t.Errorf("unbound cell not empty:\n%s", raw)
	}
	if lastRow := "http://example.org/only,,"; !strings.Contains(raw, lastRow) {
		t.Errorf("trailing unbound cells wrong:\n%s", raw)
	}
}

// TestTSVSyntax pins the SPARQL-syntax term rendering and the in-literal
// escaping that keeps one solution per line.
func TestTSVSyntax(t *testing.T) {
	raw := string(serialize(t, TSV, fixtureVars(), fixtureRows()))
	lines := strings.Split(strings.TrimSuffix(raw, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("TSV rows span lines:\n%q", raw)
	}
	if lines[0] != "?s\t?v\t?w" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "<http://example.org/a>") ||
		!strings.Contains(lines[1], `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`) {
		t.Errorf("SPARQL syntax wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], `\n`) || !strings.Contains(lines[2], `\t`) {
		t.Errorf("literal escapes missing: %q", lines[2])
	}
	if !strings.Contains(lines[2], `"bonjour"@fr`) {
		t.Errorf("lang literal wrong: %q", lines[2])
	}
	if lines[3] != "_:b0\t\t\"a,b\"" {
		t.Errorf("unbound cell wrong: %q", lines[3])
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   Format
		ok     bool
	}{
		{"", JSON, true},
		{"*/*", JSON, true},
		{"application/sparql-results+json", JSON, true},
		{"application/json", JSON, true},
		{"application/sparql-results+xml", XML, true},
		{"text/xml;charset=utf-8", XML, true},
		{"text/csv", CSV, true},
		{"application/csv", CSV, true},
		{"text/tab-separated-values", TSV, true},
		{"text/*", CSV, true},
		{"application/*", JSON, true},
		// q-values: the higher-quality supported range wins.
		{"text/csv;q=0.5, application/sparql-results+xml", XML, true},
		{"text/csv;q=0.5, text/tab-separated-values;q=0.9", TSV, true},
		// Specific beats wildcard at equal q.
		{"*/*, text/csv", CSV, true},
		// Unsupported-only is the 406 case.
		{"image/png", JSON, false},
		{"text/html;q=0.9, image/*", JSON, false},
		// Unsupported plus a fallback wildcard succeeds.
		{"text/html, */*;q=0.1", JSON, true},
		// q=0 refuses a type.
		{"text/csv;q=0", JSON, false},
		// Uppercase and spacing are tolerated.
		{" Application/JSON ; q=1.0 ", JSON, true},
	}
	for _, c := range cases {
		got, ok := Negotiate(c.accept)
		if got != c.want || ok != c.ok {
			t.Errorf("Negotiate(%q) = %v,%v want %v,%v", c.accept, got, ok, c.want, c.ok)
		}
	}
}
