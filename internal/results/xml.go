package results

import (
	"encoding/xml"
	"io"

	"repro/internal/rdf"
)

// sparqlResultsNS is the namespace of the SPARQL Query Results XML Format
// (https://www.w3.org/TR/rdf-sparql-XMLres/).
const sparqlResultsNS = "http://www.w3.org/2005/sparql-results#"

const xmlProlog = `<?xml version="1.0" encoding="UTF-8"?>` + "\n" +
	`<sparql xmlns="` + sparqlResultsNS + `">` + "\n"

// xmlWriter emits SPARQL Query Results XML incrementally: prolog and head
// on Begin, one <result> element per Row, the closing tags on End.
type xmlWriter struct {
	w    io.Writer
	vars []string
}

func (x *xmlWriter) Begin(vars []string) error {
	x.vars = vars
	if _, err := io.WriteString(x.w, xmlProlog+"<head>"); err != nil {
		return err
	}
	for _, v := range vars {
		if _, err := io.WriteString(x.w, `<variable name="`); err != nil {
			return err
		}
		if err := xmlEscape(x.w, v); err != nil {
			return err
		}
		if _, err := io.WriteString(x.w, `"/>`); err != nil {
			return err
		}
	}
	_, err := io.WriteString(x.w, "</head>\n<results>\n")
	return err
}

func (x *xmlWriter) Row(row []rdf.Term) error {
	if _, err := io.WriteString(x.w, "<result>"); err != nil {
		return err
	}
	for i, v := range x.vars {
		if i >= len(row) || row[i].IsZero() {
			continue // unbound: no <binding> element for the variable
		}
		if _, err := io.WriteString(x.w, `<binding name="`); err != nil {
			return err
		}
		if err := xmlEscape(x.w, v); err != nil {
			return err
		}
		if _, err := io.WriteString(x.w, `">`); err != nil {
			return err
		}
		if err := writeXMLTerm(x.w, row[i]); err != nil {
			return err
		}
		if _, err := io.WriteString(x.w, "</binding>"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(x.w, "</result>\n")
	return err
}

func (x *xmlWriter) End() error {
	_, err := io.WriteString(x.w, "</results>\n</sparql>\n")
	return err
}

func (x *xmlWriter) Boolean(b bool) error {
	body := "<head/>\n<boolean>false</boolean>\n</sparql>\n"
	if b {
		body = "<head/>\n<boolean>true</boolean>\n</sparql>\n"
	}
	_, err := io.WriteString(x.w, xmlProlog+body)
	return err
}

func writeXMLTerm(w io.Writer, t rdf.Term) error {
	switch t.Kind {
	case rdf.IRI:
		if _, err := io.WriteString(w, "<uri>"); err != nil {
			return err
		}
		if err := xmlEscape(w, t.Value); err != nil {
			return err
		}
		_, err := io.WriteString(w, "</uri>")
		return err
	case rdf.Blank:
		if _, err := io.WriteString(w, "<bnode>"); err != nil {
			return err
		}
		if err := xmlEscape(w, t.Value); err != nil {
			return err
		}
		_, err := io.WriteString(w, "</bnode>")
		return err
	default:
		open := "<literal"
		if t.Lang != "" {
			if _, err := io.WriteString(w, open+` xml:lang="`); err != nil {
				return err
			}
			if err := xmlEscape(w, t.Lang); err != nil {
				return err
			}
			if _, err := io.WriteString(w, `">`); err != nil {
				return err
			}
		} else if t.Datatype != "" {
			if _, err := io.WriteString(w, open+` datatype="`); err != nil {
				return err
			}
			if err := xmlEscape(w, t.Datatype); err != nil {
				return err
			}
			if _, err := io.WriteString(w, `">`); err != nil {
				return err
			}
		} else {
			if _, err := io.WriteString(w, open+">"); err != nil {
				return err
			}
		}
		if err := xmlEscape(w, t.Value); err != nil {
			return err
		}
		_, err := io.WriteString(w, "</literal>")
		return err
	}
}

// xmlEscape escapes s for use in element content or a quoted attribute.
func xmlEscape(w io.Writer, s string) error {
	return xml.EscapeText(w, []byte(s))
}
