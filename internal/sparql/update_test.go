package sparql

import (
	"strings"
	"testing"
)

func TestParseUpdateInsertData(t *testing.T) {
	u, err := ParseUpdate(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:a ex:p ex:b . ex:b ex:p "lit" }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 1 || u.Ops[0].Kind != UpdateInsertData {
		t.Fatalf("want one INSERT DATA op, got %+v", u.Ops)
	}
	if len(u.Ops[0].Data) != 2 {
		t.Fatalf("want 2 ground triples, got %d", len(u.Ops[0].Data))
	}
	if got := u.Ops[0].Data[0].S.Value; got != "http://ex/a" {
		t.Errorf("prefix expansion failed: %q", got)
	}
}

func TestParseUpdateOpsChain(t *testing.T) {
	u, err := ParseUpdate(`
		INSERT DATA { <a> <p> <b> } ;
		DELETE DATA { <a> <p> <b> } ;
		DELETE { ?s <p> ?o } INSERT { ?o <p> ?s } WHERE { ?s <p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []UpdateOpKind{UpdateInsertData, UpdateDeleteData, UpdateModify}
	if len(u.Ops) != len(kinds) {
		t.Fatalf("want %d ops, got %d", len(kinds), len(u.Ops))
	}
	for i, k := range kinds {
		if u.Ops[i].Kind != k {
			t.Errorf("op %d: want %v, got %v", i, k, u.Ops[i].Kind)
		}
	}
	m := u.Ops[2]
	if len(m.DeleteTemplates) != 1 || len(m.InsertTemplates) != 1 {
		t.Fatalf("modify templates: del=%d ins=%d", len(m.DeleteTemplates), len(m.InsertTemplates))
	}
}

func TestParseUpdateDeleteWhereShorthand(t *testing.T) {
	u, err := ParseUpdate(`DELETE WHERE { ?s <p> ?o . ?o <q> ?s }`)
	if err != nil {
		t.Fatal(err)
	}
	op := u.Ops[0]
	if op.Kind != UpdateModify {
		t.Fatalf("want Modify, got %v", op.Kind)
	}
	if len(op.DeleteTemplates) != 2 || len(op.InsertTemplates) != 0 {
		t.Fatalf("templates: del=%d ins=%d", len(op.DeleteTemplates), len(op.InsertTemplates))
	}
	// The pattern doubles as the template.
	if len(op.Where.Elements) == 0 {
		t.Fatal("WHERE group is empty")
	}
}

func TestParseUpdateInsertWhereOnly(t *testing.T) {
	u, err := ParseUpdate(`INSERT { ?o <rev> ?s } WHERE { ?s <p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	op := u.Ops[0]
	if op.Kind != UpdateModify || len(op.DeleteTemplates) != 0 || len(op.InsertTemplates) != 1 {
		t.Fatalf("got %+v", op)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", ``, "empty update"},
		{"query not update", `SELECT * WHERE { ?s ?p ?o }`, "expected INSERT or DELETE"},
		{"var in insert data", `INSERT DATA { ?s <p> <o> }`, "ground"},
		{"var in delete data", `DELETE DATA { <s> <p> ?o }`, "ground"},
		{"blank in template", `INSERT { _:b <p> ?o } WHERE { ?s <p> ?o }`, "blank node"},
		{"blank in data", `INSERT DATA { _:b <p> <o> }`, "blank node"},
		{"missing where", `INSERT { <a> <p> <b> }`, "expected WHERE"},
		{"empty templates", `DELETE { } INSERT { } WHERE { ?s <p> ?o }`, "at least one non-empty template"},
		{"delete where filter", `DELETE WHERE { ?s <p> ?o . FILTER(?s = <a>) }`, "plain triples block"},
		{"trailing garbage", `INSERT DATA { <a> <p> <b> } <x>`, "trailing input"},
	}
	for _, tc := range cases {
		_, err := ParseUpdate(tc.src)
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", tc.name, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: want error containing %q, got %q", tc.name, tc.wantSub, err)
		}
	}
}
