package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// RDFType is the IRI that the 'a' keyword abbreviates.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// Parse parses a SELECT query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input %s", p.cur())
	}
	return q, nil
}

type parser struct {
	toks     []token
	i        int
	prefixes map[string]string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) atKeyword(s string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == s
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q, got %s", s, p.cur())
	}
	p.i++
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) query() (*Query, error) {
	q := &Query{Prefixes: p.prefixes}
	for p.atKeyword("PREFIX") {
		p.i++
		if !p.at(tokPName) {
			return nil, p.errf("expected prefix name, got %s", p.cur())
		}
		name := p.next().text
		if !strings.HasSuffix(name, ":") {
			return nil, p.errf("prefix declaration %q must end with ':'", name)
		}
		if !p.at(tokIRI) {
			return nil, p.errf("expected IRI after PREFIX %s", name)
		}
		p.prefixes[strings.TrimSuffix(name, ":")] = p.next().text
	}
	switch {
	case p.atKeyword("ASK"):
		p.i++
		q.Ask = true
		// WHERE is optional for ASK.
		if p.atKeyword("WHERE") {
			p.i++
		}
	case p.atKeyword("SELECT"):
		p.i++
		if p.atKeyword("DISTINCT") {
			p.i++
			q.Distinct = true
		}
		switch {
		case p.at(tokStar):
			p.i++
		case p.at(tokVar):
			for p.at(tokVar) {
				q.Select = append(q.Select, Var(p.next().text))
			}
		default:
			return nil, p.errf("expected variable list or *, got %s", p.cur())
		}
		if !p.atKeyword("WHERE") {
			return nil, p.errf("expected WHERE, got %s", p.cur())
		}
		p.i++
	default:
		return nil, p.errf("expected SELECT or ASK, got %s", p.cur())
	}
	g, err := p.group()
	if err != nil {
		return nil, err
	}
	q.Where = g
	q.Limit, q.Offset = -1, -1
	if q.Ask {
		return q, nil
	}
	if err := p.solutionModifiers(q); err != nil {
		return nil, err
	}
	return q, nil
}

// solutionModifiers parses the optional ORDER BY, LIMIT and OFFSET tail.
func (p *parser) solutionModifiers(q *Query) error {
	if p.atKeyword("ORDER") {
		p.i++
		if !p.atKeyword("BY") {
			return p.errf("expected BY after ORDER")
		}
		p.i++
		for {
			switch {
			case p.at(tokVar):
				q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(p.next().text)})
			case p.atKeyword("ASC"), p.atKeyword("DESC"):
				desc := p.next().text == "DESC"
				if err := p.expectPunct("("); err != nil {
					return err
				}
				if !p.at(tokVar) {
					return p.errf("ASC/DESC takes a variable")
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(p.next().text), Desc: desc})
				if err := p.expectPunct(")"); err != nil {
					return err
				}
			default:
				if len(q.OrderBy) == 0 {
					return p.errf("expected sort key after ORDER BY")
				}
				return p.numericModifiers(q)
			}
		}
	}
	return p.numericModifiers(q)
}

func (p *parser) numericModifiers(q *Query) error {
	for {
		switch {
		case p.atKeyword("LIMIT"):
			p.i++
			n, err := p.nonNegative("LIMIT")
			if err != nil {
				return err
			}
			q.Limit = n
		case p.atKeyword("OFFSET"):
			p.i++
			n, err := p.nonNegative("OFFSET")
			if err != nil {
				return err
			}
			q.Offset = n
		default:
			return nil
		}
	}
}

func (p *parser) nonNegative(kw string) (int, error) {
	if !p.at(tokNumber) {
		return 0, p.errf("%s takes a non-negative integer, got %s", kw, p.cur())
	}
	t := p.next()
	n := 0
	for _, c := range t.text {
		if c < '0' || c > '9' {
			return 0, p.errf("%s takes a non-negative integer, got %q", kw, t.text)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// group parses "{ ... }".
func (p *parser) group() (Group, error) {
	var g Group
	if err := p.expectPunct("{"); err != nil {
		return g, err
	}
	for !p.atPunct("}") {
		switch {
		case p.at(tokEOF):
			return g, p.errf("unterminated group")
		case p.atKeyword("OPTIONAL"):
			p.i++
			sub, err := p.group()
			if err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, Optional{Group: sub})
		case p.atKeyword("FILTER"):
			p.i++
			e, err := p.filterExpr()
			if err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, Filter{Expr: e})
			// An optional '.' may follow a filter.
			if p.atPunct(".") {
				p.i++
			}
		case p.atPunct("{"):
			// Sub-group, possibly the head of a UNION chain.
			sub, err := p.group()
			if err != nil {
				return g, err
			}
			if p.atKeyword("UNION") {
				alts := []Group{sub}
				for p.atKeyword("UNION") {
					p.i++
					alt, err := p.group()
					if err != nil {
						return g, err
					}
					alts = append(alts, alt)
				}
				g.Elements = append(g.Elements, Union{Alternatives: alts})
			} else {
				g.Elements = append(g.Elements, SubGroup{Group: sub})
			}
			if p.atPunct(".") {
				p.i++
			}
		default:
			tb, err := p.triplesBlock()
			if err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, tb)
		}
	}
	p.i++ // consume '}'
	return g, nil
}

// triplesBlock parses consecutive triple patterns, honouring the ';' and
// ',' shorthand.
func (p *parser) triplesBlock() (TriplesBlock, error) {
	var tb TriplesBlock
	for {
		subj, ok, err := p.node()
		if err != nil {
			return tb, err
		}
		if !ok {
			break
		}
		for {
			pred, ok, err := p.nodeAllowA()
			if err != nil {
				return tb, err
			}
			if !ok {
				return tb, p.errf("expected predicate, got %s", p.cur())
			}
			for {
				obj, ok, err := p.node()
				if err != nil {
					return tb, err
				}
				if !ok {
					return tb, p.errf("expected object, got %s", p.cur())
				}
				tb.Patterns = append(tb.Patterns, TriplePattern{S: subj, P: pred, O: obj})
				if p.atPunct(",") {
					p.i++
					continue
				}
				break
			}
			if p.atPunct(";") {
				p.i++
				// A dangling ';' before '.' or '}' is tolerated.
				if p.atPunct(".") || p.atPunct("}") {
					break
				}
				continue
			}
			break
		}
		if p.atPunct(".") {
			p.i++
			continue
		}
		break
	}
	if len(tb.Patterns) == 0 {
		return tb, p.errf("expected triple pattern, got %s", p.cur())
	}
	return tb, nil
}

// node parses a term or variable. ok=false (with nil error) means the
// current token cannot start a node.
func (p *parser) node() (Node, bool, error) {
	switch p.cur().kind {
	case tokVar:
		return V(p.next().text), true, nil
	case tokIRI:
		return IRINode(p.next().text), true, nil
	case tokPName:
		iri, err := p.expandPName(p.cur().text)
		if err != nil {
			return Node{}, false, err
		}
		p.i++
		return IRINode(iri), true, nil
	case tokBlank:
		return TermNode(rdf.NewBlank(p.next().text)), true, nil
	case tokLiteral:
		t := p.next()
		term := rdf.Term{Kind: rdf.Literal, Value: t.litValue, Lang: t.litLang, Datatype: t.litType}
		return TermNode(term), true, nil
	case tokNumber:
		t := p.next()
		dt := "http://www.w3.org/2001/XMLSchema#integer"
		if strings.Contains(t.text, ".") {
			dt = "http://www.w3.org/2001/XMLSchema#decimal"
		}
		return TermNode(rdf.NewTypedLiteral(t.text, dt)), true, nil
	}
	return Node{}, false, nil
}

// nodeAllowA is node() plus the 'a' keyword.
func (p *parser) nodeAllowA() (Node, bool, error) {
	if p.at(tokA) {
		p.i++
		return IRINode(RDFType), true, nil
	}
	return p.node()
}

func (p *parser) expandPName(pname string) (string, error) {
	colon := strings.IndexByte(pname, ':')
	if colon < 0 {
		return "", p.errf("malformed prefixed name %q", pname)
	}
	prefix, local := pname[:colon], pname[colon+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errf("undeclared prefix %q", prefix)
	}
	return base + local, nil
}

// filterExpr parses "( expr )" or a bare builtin call.
func (p *parser) filterExpr() (Expr, error) {
	if p.atPunct("(") {
		p.i++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.primaryExpr()
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("||") {
		p.i++
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Logical{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("&&") {
		p.i++
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = Logical{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.additiveExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct {
		switch p.cur().text {
		case "=", "!=", "<", "<=", ">", ">=":
			op := CmpOp(p.next().text)
			r, err := p.additiveExpr()
			if err != nil {
				return nil, err
			}
			return Cmp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) additiveExpr() (Expr, error) {
	l, err := p.multiplicativeExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("+") || p.atPunct("-"):
			op := ArithOp(p.next().text)
			r, err := p.multiplicativeExpr()
			if err != nil {
				return nil, err
			}
			l = Arith{Op: op, L: l, R: r}
		case p.at(tokNumber) && strings.HasPrefix(p.cur().text, "-"):
			// The lexer folds a '-' directly followed by a digit into the
			// number ("?a - 3" arrives as ?a, -3): re-interpret the sign as
			// a subtraction of the magnitude.
			t := p.next()
			l = Arith{Op: OpSub, L: l, R: numberExprTerm(t.text[1:])}
		default:
			return l, nil
		}
	}
}

func (p *parser) multiplicativeExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch {
		case p.at(tokStar):
			op = OpMul
		case p.atPunct("/"):
			op = OpDiv
		default:
			return l, nil
		}
		p.i++
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.atPunct("!") {
		p.i++
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	switch p.cur().kind {
	case tokPunct:
		if p.atPunct("(") {
			p.i++
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokKeyword:
		if p.atKeyword("BOUND") {
			p.i++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if !p.at(tokVar) {
				return nil, p.errf("bound() takes a variable, got %s", p.cur())
			}
			v := Var(p.next().text)
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return Bound{V: v}, nil
		}
		if p.atKeyword("REGEX") {
			return p.regexExpr()
		}
	case tokVar:
		return ExprVar{V: Var(p.next().text)}, nil
	case tokIRI:
		return ExprTerm{Term: rdf.NewIRI(p.next().text)}, nil
	case tokPName:
		iri, err := p.expandPName(p.cur().text)
		if err != nil {
			return nil, err
		}
		p.i++
		return ExprTerm{Term: rdf.NewIRI(iri)}, nil
	case tokLiteral:
		t := p.next()
		return ExprTerm{Term: rdf.Term{Kind: rdf.Literal, Value: t.litValue, Lang: t.litLang, Datatype: t.litType}}, nil
	case tokNumber:
		return numberExprTerm(p.next().text), nil
	}
	return nil, p.errf("unexpected token %s in expression", p.cur())
}

// numberExprTerm builds the typed-literal constant for a numeric token:
// xsd:integer without a decimal point, xsd:decimal with one.
func numberExprTerm(text string) Expr {
	dt := "http://www.w3.org/2001/XMLSchema#integer"
	if strings.Contains(text, ".") {
		dt = "http://www.w3.org/2001/XMLSchema#decimal"
	}
	return ExprTerm{Term: rdf.NewTypedLiteral(text, dt)}
}

// regexExpr parses regex(expr, "pattern"[, "flags"]): the pattern and
// flags must be constant string literals, and the flags a combination of
// "i" (case-insensitive), "s" (dot matches newline) and "m" (multi-line
// anchors) — the subset shared with Go's RE2 syntax.
func (p *parser) regexExpr() (Expr, error) {
	p.i++ // REGEX
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	arg, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	pattern, err := p.regexStringArg("pattern")
	if err != nil {
		return nil, err
	}
	flags := ""
	if p.atPunct(",") {
		p.i++
		flags, err = p.regexStringArg("flags")
		if err != nil {
			return nil, err
		}
		for i := 0; i < len(flags); i++ {
			switch flags[i] {
			case 'i', 's', 'm':
			default:
				return nil, p.errf("unsupported regex flag %q (supported: i, s, m)", string(flags[i]))
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return Regex{Arg: arg, Pattern: pattern, Flags: flags}, nil
}

func (p *parser) regexStringArg(what string) (string, error) {
	if !p.at(tokLiteral) || p.cur().litLang != "" ||
		(p.cur().litType != "" && p.cur().litType != "http://www.w3.org/2001/XMLSchema#string") {
		return "", p.errf("regex() %s must be a plain string literal, got %s", what, p.cur())
	}
	return p.next().litValue, nil
}
