package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar     // ?name
	tokIRI     // <...>
	tokPName   // prefix:local or :local
	tokLiteral // "..." with optional @lang or ^^<iri>
	tokNumber
	tokBlank // _:label
	tokPunct // { } ( ) . ; , and operators
	tokStar
	tokA // the 'a' keyword = rdf:type
)

type token struct {
	kind tokenKind
	text string
	// literal parts
	litValue, litLang, litType string
	pos                        int
}

func (t token) String() string {
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "WHERE": true, "OPTIONAL": true, "UNION": true,
	"FILTER": true, "PREFIX": true, "DISTINCT": true, "BOUND": true,
	"REGEX": true,
	"ORDER": true, "BY": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "ASK": true,
	"INSERT": true, "DELETE": true, "DATA": true,
}

type lexer struct {
	src  string
	i    int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipWS()
		if l.i >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.i})
			return l.toks, nil
		}
		start := l.i
		c := l.src[l.i]
		switch {
		case c == '?' || c == '$':
			l.i++
			name := l.ident()
			if name == "" {
				return nil, fmt.Errorf("sparql: empty variable name at %d", start)
			}
			l.emit(token{kind: tokVar, text: name, pos: start})
		case c == '<' && l.looksLikeIRI():
			end := strings.IndexByte(l.src[l.i:], '>')
			l.emit(token{kind: tokIRI, text: l.src[l.i+1 : l.i+end], pos: start})
			l.i += end + 1
		case c == '"':
			tok, err := l.literal()
			if err != nil {
				return nil, err
			}
			l.emit(tok)
		case c == '_' && l.i+1 < len(l.src) && l.src[l.i+1] == ':':
			l.i += 2
			name := l.ident()
			if name == "" {
				return nil, fmt.Errorf("sparql: empty blank node label at %d", start)
			}
			l.emit(token{kind: tokBlank, text: name, pos: start})
		case c == '{' || c == '}' || c == '(' || c == ')' || c == '.' || c == ';' || c == ',':
			l.i++
			l.emit(token{kind: tokPunct, text: string(c), pos: start})
		case c == '*':
			l.i++
			l.emit(token{kind: tokStar, text: "*", pos: start})
		case c == '=':
			l.i++
			l.emit(token{kind: tokPunct, text: "=", pos: start})
		case c == '!':
			if l.peekAt(1) == '=' {
				l.i += 2
				l.emit(token{kind: tokPunct, text: "!=", pos: start})
			} else {
				l.i++
				l.emit(token{kind: tokPunct, text: "!", pos: start})
			}
		case c == '<' || c == '>':
			if l.peekAt(1) == '=' {
				l.i += 2
				l.emit(token{kind: tokPunct, text: string(c) + "=", pos: start})
			} else {
				l.i++
				l.emit(token{kind: tokPunct, text: string(c), pos: start})
			}
		case c == '&' && l.peekAt(1) == '&':
			l.i += 2
			l.emit(token{kind: tokPunct, text: "&&", pos: start})
		case c == '|' && l.peekAt(1) == '|':
			l.i += 2
			l.emit(token{kind: tokPunct, text: "||", pos: start})
		case c == '#':
			for l.i < len(l.src) && l.src[l.i] != '\n' {
				l.i++
			}
		case c >= '0' && c <= '9' || (c == '-' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9'):
			l.i++
			for l.i < len(l.src) && (l.src[l.i] >= '0' && l.src[l.i] <= '9' || l.src[l.i] == '.') {
				// A trailing '.' is a statement terminator, not part of the
				// number, unless followed by a digit.
				if l.src[l.i] == '.' && !(l.i+1 < len(l.src) && l.src[l.i+1] >= '0' && l.src[l.i+1] <= '9') {
					break
				}
				l.i++
			}
			l.emit(token{kind: tokNumber, text: l.src[start:l.i], pos: start})
		case c == '+' || c == '-' || c == '/':
			// Arithmetic operators. This case sits below the number case so
			// that '-' directly followed by a digit still lexes as a negative
			// number ("?a - 3" therefore reaches the parser as ?a and -3; the
			// additive level re-interprets the sign as a subtraction).
			l.i++
			l.emit(token{kind: tokPunct, text: string(c), pos: start})
		default:
			word := l.identColon()
			if word == "" {
				return nil, fmt.Errorf("sparql: unexpected character %q at %d", c, start)
			}
			upper := strings.ToUpper(word)
			switch {
			case keywords[upper]:
				l.emit(token{kind: tokKeyword, text: upper, pos: start})
			case word == "a":
				l.emit(token{kind: tokA, text: "a", pos: start})
			case strings.Contains(word, ":"):
				l.emit(token{kind: tokPName, text: word, pos: start})
			case word == "true" || word == "false":
				l.emit(token{kind: tokLiteral, text: word, litValue: word,
					litType: "http://www.w3.org/2001/XMLSchema#boolean", pos: start})
			default:
				return nil, fmt.Errorf("sparql: unexpected identifier %q at %d", word, start)
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

// looksLikeIRI disambiguates '<' between an IRI reference and the
// less-than operator: it is an IRI only if a '>' follows before any
// whitespace or quote.
func (l *lexer) looksLikeIRI() bool {
	for j := l.i + 1; j < len(l.src); j++ {
		switch l.src[j] {
		case '>':
			return true
		case ' ', '\t', '\n', '\r', '"', '<':
			return false
		}
	}
	return false
}

func (l *lexer) peekAt(off int) byte {
	if l.i+off < len(l.src) {
		return l.src[l.i+off]
	}
	return 0
}

func (l *lexer) skipWS() {
	for l.i < len(l.src) {
		c := l.src[l.i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.i++
			continue
		}
		break
	}
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// ident consumes a plain identifier (letters, digits, underscore, dash).
func (l *lexer) ident() string {
	start := l.i
	for l.i < len(l.src) {
		r := rune(l.src[l.i])
		if !isIdentRune(r) {
			break
		}
		l.i++
	}
	return l.src[start:l.i]
}

// identColon consumes an identifier that may contain at most one ':' (a
// prefixed name). A leading ':' is allowed (default prefix). The local part
// may contain '.' when followed by an identifier character.
func (l *lexer) identColon() string {
	start := l.i
	sawColon := false
	for l.i < len(l.src) {
		c := l.src[l.i]
		r := rune(c)
		if isIdentRune(r) {
			l.i++
			continue
		}
		if c == ':' && !sawColon {
			sawColon = true
			l.i++
			continue
		}
		if c == '.' && sawColon && l.i+1 < len(l.src) && isIdentRune(rune(l.src[l.i+1])) {
			l.i++
			continue
		}
		break
	}
	return l.src[start:l.i]
}

func (l *lexer) literal() (token, error) {
	start := l.i
	var sb strings.Builder
	l.i++ // opening quote
	for l.i < len(l.src) {
		c := l.src[l.i]
		if c == '"' {
			l.i++
			tok := token{kind: tokLiteral, pos: start}
			// Optional language tag or datatype.
			if l.i < len(l.src) && l.src[l.i] == '@' {
				l.i++
				tok.litLang = l.ident()
			} else if strings.HasPrefix(l.src[l.i:], "^^<") {
				l.i += 3
				end := strings.IndexByte(l.src[l.i:], '>')
				if end < 0 {
					return token{}, fmt.Errorf("sparql: unterminated datatype IRI at %d", l.i)
				}
				tok.litType = l.src[l.i : l.i+end]
				l.i += end + 1
			}
			tok.litValue = sb.String()
			tok.text = tok.litValue
			return tok, nil
		}
		if c == '\\' {
			if l.i+1 >= len(l.src) {
				return token{}, fmt.Errorf("sparql: dangling escape at %d", l.i)
			}
			l.i++
			switch l.src[l.i] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return token{}, fmt.Errorf("sparql: unknown escape \\%c at %d", l.src[l.i], l.i)
			}
			l.i++
			continue
		}
		sb.WriteByte(c)
		l.i++
	}
	return token{}, fmt.Errorf("sparql: unterminated literal at %d", start)
}
