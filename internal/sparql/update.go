package sparql

import (
	"strings"

	"repro/internal/rdf"
)

// UpdateOpKind distinguishes the supported SPARQL 1.1 Update operations.
type UpdateOpKind int

const (
	// UpdateInsertData is INSERT DATA { ground triples }.
	UpdateInsertData UpdateOpKind = iota
	// UpdateDeleteData is DELETE DATA { ground triples }.
	UpdateDeleteData
	// UpdateModify is DELETE/INSERT ... WHERE (either template may be
	// absent, not both), including the DELETE WHERE shorthand.
	UpdateModify
)

func (k UpdateOpKind) String() string {
	switch k {
	case UpdateInsertData:
		return "INSERT DATA"
	case UpdateDeleteData:
		return "DELETE DATA"
	case UpdateModify:
		return "DELETE/INSERT WHERE"
	}
	return "unknown"
}

// UpdateOp is one operation of an update request.
type UpdateOp struct {
	Kind UpdateOpKind

	// Data holds the ground triples of INSERT DATA / DELETE DATA.
	Data []rdf.Triple

	// DeleteTemplates and InsertTemplates hold the instantiation templates
	// of a Modify operation; Where is its pattern, evaluated against the
	// pre-operation state of the store.
	DeleteTemplates []TriplePattern
	InsertTemplates []TriplePattern
	Where           Group
}

// Update is a parsed SPARQL 1.1 Update request: one or more operations
// separated by ';', sharing one prefix environment.
type Update struct {
	Prefixes map[string]string
	Ops      []UpdateOp
}

// ParseUpdate parses a SPARQL 1.1 Update request. Supported operations:
// INSERT DATA, DELETE DATA, DELETE/INSERT ... WHERE (either template
// optional, not both), and the DELETE WHERE shorthand. Blank nodes in
// templates and DATA blocks are rejected — the store has no mechanism for
// minting fresh blank nodes per solution.
func ParseUpdate(src string) (*Update, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	u := &Update{Prefixes: p.prefixes}
	for {
		// PREFIX declarations may precede any operation and accumulate.
		for p.atKeyword("PREFIX") {
			p.i++
			if !p.at(tokPName) {
				return nil, p.errf("expected prefix name, got %s", p.cur())
			}
			name := p.next().text
			if !strings.HasSuffix(name, ":") {
				return nil, p.errf("prefix declaration %q must end with ':'", name)
			}
			if !p.at(tokIRI) {
				return nil, p.errf("expected IRI after PREFIX %s", name)
			}
			p.prefixes[strings.TrimSuffix(name, ":")] = p.next().text
		}
		if p.at(tokEOF) {
			break
		}
		op, err := p.updateOp()
		if err != nil {
			return nil, err
		}
		u.Ops = append(u.Ops, op)
		if p.atPunct(";") {
			p.i++
			continue
		}
		break
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input %s", p.cur())
	}
	if len(u.Ops) == 0 {
		return nil, p.errf("empty update request")
	}
	return u, nil
}

// updateOp parses one operation starting at INSERT or DELETE.
func (p *parser) updateOp() (UpdateOp, error) {
	switch {
	case p.atKeyword("INSERT"):
		p.i++
		if p.atKeyword("DATA") {
			p.i++
			data, err := p.groundTriples("INSERT DATA")
			return UpdateOp{Kind: UpdateInsertData, Data: data}, err
		}
		ins, err := p.template()
		if err != nil {
			return UpdateOp{}, err
		}
		if len(ins) == 0 {
			return UpdateOp{}, p.errf("INSERT template must not be empty")
		}
		return p.modifyTail(nil, ins)
	case p.atKeyword("DELETE"):
		p.i++
		if p.atKeyword("DATA") {
			p.i++
			data, err := p.groundTriples("DELETE DATA")
			return UpdateOp{Kind: UpdateDeleteData, Data: data}, err
		}
		if p.atKeyword("WHERE") {
			// DELETE WHERE { pattern }: the pattern doubles as the delete
			// template, so it must be a plain triples block.
			p.i++
			g, err := p.group()
			if err != nil {
				return UpdateOp{}, err
			}
			pats, err := p.plainPatterns(g)
			if err != nil {
				return UpdateOp{}, err
			}
			return UpdateOp{Kind: UpdateModify, DeleteTemplates: pats, Where: g}, nil
		}
		del, err := p.template()
		if err != nil {
			return UpdateOp{}, err
		}
		var ins []TriplePattern
		if p.atKeyword("INSERT") {
			p.i++
			ins, err = p.template()
			if err != nil {
				return UpdateOp{}, err
			}
		}
		if len(del) == 0 && len(ins) == 0 {
			return UpdateOp{}, p.errf("DELETE/INSERT needs at least one non-empty template")
		}
		return p.modifyTail(del, ins)
	}
	return UpdateOp{}, p.errf("expected INSERT or DELETE, got %s", p.cur())
}

// modifyTail parses the WHERE clause closing a Modify operation.
func (p *parser) modifyTail(del, ins []TriplePattern) (UpdateOp, error) {
	if !p.atKeyword("WHERE") {
		return UpdateOp{}, p.errf("expected WHERE, got %s", p.cur())
	}
	p.i++
	g, err := p.group()
	if err != nil {
		return UpdateOp{}, err
	}
	return UpdateOp{Kind: UpdateModify, DeleteTemplates: del, InsertTemplates: ins, Where: g}, nil
}

// template parses "{ triples }" into instantiation templates, rejecting
// blank nodes. An empty template "{}" yields nil.
func (p *parser) template() ([]TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var pats []TriplePattern
	for !p.atPunct("}") {
		if p.at(tokEOF) {
			return nil, p.errf("unterminated template")
		}
		tb, err := p.triplesBlock()
		if err != nil {
			return nil, err
		}
		pats = append(pats, tb.Patterns...)
	}
	p.i++ // consume '}'
	for _, tp := range pats {
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if !n.IsVar && n.Term.Kind == rdf.Blank {
				return nil, p.errf("blank node in update template is not supported")
			}
		}
	}
	return pats, nil
}

// groundTriples parses the "{ triples }" of a DATA block and requires every
// position to be concrete.
func (p *parser) groundTriples(form string) ([]rdf.Triple, error) {
	pats, err := p.template()
	if err != nil {
		return nil, err
	}
	out := make([]rdf.Triple, 0, len(pats))
	for _, tp := range pats {
		if tp.S.IsVar || tp.P.IsVar || tp.O.IsVar {
			return nil, p.errf("%s requires ground triples, got variable in %s", form, tp)
		}
		out = append(out, rdf.Triple{S: tp.S.Term, P: tp.P.Term, O: tp.O.Term})
	}
	return out, nil
}

// plainPatterns flattens a group that must consist of triples blocks only
// (the DELETE WHERE shorthand), rejecting blank nodes as template() does.
func (p *parser) plainPatterns(g Group) ([]TriplePattern, error) {
	var pats []TriplePattern
	for _, el := range g.Elements {
		tb, ok := el.(TriplesBlock)
		if !ok {
			return nil, p.errf("DELETE WHERE pattern must be a plain triples block")
		}
		pats = append(pats, tb.Patterns...)
	}
	if len(pats) == 0 {
		return nil, p.errf("DELETE WHERE pattern must not be empty")
	}
	for _, tp := range pats {
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			if !n.IsVar && n.Term.Kind == rdf.Blank {
				return nil, p.errf("blank node in DELETE WHERE template is not supported")
			}
		}
	}
	return pats, nil
}
