package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseQ1Actors(t *testing.T) {
	// Q1 from the paper's introduction.
	q := mustParse(t, `
		PREFIX : <http://ex.org/>
		SELECT ?actor ?name ?addr ?email ?tele WHERE {
			?actor :name ?name .
			?actor :address ?addr .
			OPTIONAL {
				?actor :email ?email .
				?actor :telephone ?tele . }}`)
	if len(q.Select) != 5 || q.Select[0] != "actor" {
		t.Fatalf("Select = %v", q.Select)
	}
	if len(q.Where.Elements) != 2 {
		t.Fatalf("Where has %d elements, want 2", len(q.Where.Elements))
	}
	tb, ok := q.Where.Elements[0].(TriplesBlock)
	if !ok || len(tb.Patterns) != 2 {
		t.Fatalf("first element = %#v", q.Where.Elements[0])
	}
	if tb.Patterns[0].P.Term.Value != "http://ex.org/name" {
		t.Errorf("prefix expansion gave %s", tb.Patterns[0].P.Term.Value)
	}
	opt, ok := q.Where.Elements[1].(Optional)
	if !ok {
		t.Fatalf("second element = %#v", q.Where.Elements[1])
	}
	if inner, ok := opt.Group.Elements[0].(TriplesBlock); !ok || len(inner.Patterns) != 2 {
		t.Fatalf("optional inner = %#v", opt.Group.Elements[0])
	}
}

func TestParseQ2Nested(t *testing.T) {
	// Q2 from the paper: BGP with a nested OPT containing a 2-pattern BGP.
	q := mustParse(t, `
		PREFIX : <http://ex.org/>
		SELECT ?friend ?sitcom WHERE {
			:Jerry :hasFriend ?friend .
			OPTIONAL {
				?friend :actedIn ?sitcom .
				?sitcom :location :NewYorkCity . }}`)
	tb := q.Where.Elements[0].(TriplesBlock)
	if tb.Patterns[0].S.IsVar || tb.Patterns[0].S.Term.Value != "http://ex.org/Jerry" {
		t.Errorf("subject = %v", tb.Patterns[0].S)
	}
	if !tb.Patterns[0].O.IsVar || tb.Patterns[0].O.Var != "friend" {
		t.Errorf("object = %v", tb.Patterns[0].O)
	}
}

func TestParseSelectStar(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s <http://p> ?o . }`)
	if !q.SelectAll() {
		t.Error("SELECT * must report SelectAll")
	}
}

func TestParseDistinct(t *testing.T) {
	q := mustParse(t, `SELECT DISTINCT ?s WHERE { ?s <http://p> ?o . }`)
	if !q.Distinct || len(q.Select) != 1 {
		t.Error("DISTINCT not parsed")
	}
}

func TestParseAKeyword(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?x a <http://ex.org/Person> . }`)
	tb := q.Where.Elements[0].(TriplesBlock)
	if tb.Patterns[0].P.Term.Value != RDFType {
		t.Errorf("'a' expanded to %s", tb.Patterns[0].P.Term.Value)
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	q := mustParse(t, `
		PREFIX ex: <http://ex.org/>
		SELECT * WHERE { ?x ex:p1 ?a ; ex:p2 ?b , ?c . }`)
	tb := q.Where.Elements[0].(TriplesBlock)
	if len(tb.Patterns) != 3 {
		t.Fatalf("got %d patterns, want 3", len(tb.Patterns))
	}
	for _, tp := range tb.Patterns {
		if !tp.S.IsVar || tp.S.Var != "x" {
			t.Errorf("shared subject lost: %s", tp)
		}
	}
	if tb.Patterns[1].P.Term.Value != "http://ex.org/p2" || tb.Patterns[2].P.Term.Value != "http://ex.org/p2" {
		t.Error("';' shorthand predicate wrong")
	}
}

func TestParseUnion(t *testing.T) {
	q := mustParse(t, `
		PREFIX : <http://ex.org/>
		SELECT * WHERE {
			{ ?x :p ?y . } UNION { ?x :q ?y . } UNION { ?x :r ?y . }
		}`)
	u, ok := q.Where.Elements[0].(Union)
	if !ok || len(u.Alternatives) != 3 {
		t.Fatalf("union = %#v", q.Where.Elements[0])
	}
}

func TestParseSubGroup(t *testing.T) {
	q := mustParse(t, `
		PREFIX : <http://ex.org/>
		SELECT * WHERE {
			{ ?x :p ?y . OPTIONAL { ?y :q ?z . } }
			{ ?x :r ?w . }
		}`)
	if len(q.Where.Elements) != 2 {
		t.Fatalf("want 2 subgroups, got %d", len(q.Where.Elements))
	}
	for _, el := range q.Where.Elements {
		if _, ok := el.(SubGroup); !ok {
			t.Errorf("element %#v is not a SubGroup", el)
		}
	}
}

func TestParseFilters(t *testing.T) {
	q := mustParse(t, `
		PREFIX : <http://ex.org/>
		SELECT * WHERE {
			?x :age ?a .
			FILTER (?a >= 18 && ?a < 65)
			FILTER (bound(?x) || ?a != 0)
		}`)
	if len(q.Where.Elements) != 3 {
		t.Fatalf("want 3 elements, got %d", len(q.Where.Elements))
	}
	f1 := q.Where.Elements[1].(Filter)
	lg, ok := f1.Expr.(Logical)
	if !ok || lg.Op != OpAnd {
		t.Fatalf("filter expr = %#v", f1.Expr)
	}
	if cmp, ok := lg.L.(Cmp); !ok || cmp.Op != OpGe {
		t.Errorf("left cmp = %#v", lg.L)
	}
	f2 := q.Where.Elements[2].(Filter)
	vars := ExprVars(f2.Expr)
	if !vars["x"] || !vars["a"] {
		t.Errorf("filter vars = %v", vars)
	}
}

func TestParseFilterEqualsIRI(t *testing.T) {
	q := mustParse(t, `
		PREFIX : <http://ex.org/>
		SELECT * WHERE { ?x :knows ?y . FILTER (?y = :Alice) }`)
	f := q.Where.Elements[1].(Filter)
	cmp := f.Expr.(Cmp)
	if term, ok := cmp.R.(ExprTerm); !ok || term.Term.Value != "http://ex.org/Alice" {
		t.Errorf("rhs = %#v", cmp.R)
	}
}

func TestParseLiteralForms(t *testing.T) {
	q := mustParse(t, `
		PREFIX : <http://ex.org/>
		SELECT * WHERE {
			?x :name "Alice" .
			?x :greet "hi"@en .
			?x :age "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
			?x :score 3.5 .
			?x :modified "2008-01-15" .
		}`)
	tb := q.Where.Elements[0].(TriplesBlock)
	if tb.Patterns[0].O.Term != rdf.NewLiteral("Alice") {
		t.Errorf("plain literal = %v", tb.Patterns[0].O.Term)
	}
	if tb.Patterns[1].O.Term.Lang != "en" {
		t.Errorf("lang literal = %v", tb.Patterns[1].O.Term)
	}
	if tb.Patterns[2].O.Term.Datatype == "" {
		t.Errorf("typed literal = %v", tb.Patterns[2].O.Term)
	}
	if tb.Patterns[3].O.Term.Datatype != "http://www.w3.org/2001/XMLSchema#decimal" {
		t.Errorf("decimal literal = %v", tb.Patterns[3].O.Term)
	}
}

func TestParseVariablePredicate(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { <http://s> ?p ?o . }`)
	tb := q.Where.Elements[0].(TriplesBlock)
	if !tb.Patterns[0].P.IsVar {
		t.Error("variable predicate lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ src, hint string }{
		{`WHERE { ?s ?p ?o }`, "missing SELECT"},
		{`SELECT ?s { ?s ?p ?o }`, "missing WHERE"},
		{`SELECT ?s WHERE { ?s ?p }`, "incomplete triple"},
		{`SELECT ?s WHERE { ?s ?p ?o`, "unterminated group"},
		{`SELECT ?s WHERE { ?s ex:p ?o }`, "undeclared prefix"},
		{`SELECT WHERE { ?s ?p ?o }`, "no projection"},
		{`SELECT ?s WHERE { FILTER ( }`, "broken filter"},
		{`SELECT ?s WHERE { OPTIONAL ?x }`, "OPTIONAL without group"},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("expected error for %s: %q", c.hint, c.src)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	src := `
		PREFIX : <http://ex.org/>
		SELECT * WHERE {
			?st :teachingAssistantOf ?course .
			OPTIONAL { ?st :takesCourse ?course2 . ?pub1 :publicationAuthor ?st . }
			{ ?prof :teacherOf ?course . ?st :advisor ?prof .
			  OPTIONAL { ?prof :researchInterest ?resint . } }
		}`
	q1 := mustParse(t, src)
	// The String rendering must itself parse to the same shape.
	q2 := mustParse(t, q1.String())
	if q1.String() != q2.String() {
		t.Errorf("round trip differs:\n%s\n%s", q1.String(), q2.String())
	}
}

func TestGroupVars(t *testing.T) {
	q := mustParse(t, `
		PREFIX : <http://ex.org/>
		SELECT * WHERE {
			?a :p ?b .
			OPTIONAL { ?b :q ?c . }
			{ ?a :r ?d . } UNION { ?a :s ?e . }
			FILTER (?zz > 1)
		}`)
	vars := GroupVars(q.Where)
	for _, v := range []Var{"a", "b", "c", "d", "e"} {
		if !vars[v] {
			t.Errorf("missing var %s", v)
		}
	}
	if vars["zz"] {
		t.Error("filter-only vars must not count as binding vars")
	}
}

func TestParseCommentsIgnored(t *testing.T) {
	q := mustParse(t, `
		# leading comment
		SELECT * WHERE {
			?s <http://p> ?o . # trailing comment
		}`)
	if len(q.Where.Elements) != 1 {
		t.Error("comments broke parsing")
	}
}

func TestParseDollarVariables(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { $s <http://p> $o . }`)
	tb := q.Where.Elements[0].(TriplesBlock)
	if !tb.Patterns[0].S.IsVar || tb.Patterns[0].S.Var != "s" {
		t.Error("$-variables must parse like ?-variables")
	}
}

func TestParseNumericObjects(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?x <http://cap> 50000 . }`)
	tb := q.Where.Elements[0].(TriplesBlock)
	if tb.Patterns[0].O.Term.Value != "50000" {
		t.Errorf("numeric object = %v", tb.Patterns[0].O.Term)
	}
}

func TestParseLUBMQ4Shape(t *testing.T) {
	// The shape of LUBM Q4 from Appendix E.1.
	q := mustParse(t, `
		PREFIX ub: <http://lubm.org/>
		SELECT * WHERE {
			?x ub:worksFor <http://www.Department9.University9999.edu> .
			?x a ub:FullProfessor .
			OPTIONAL { ?y ub:advisor ?x . ?x ub:teacherOf ?z . ?y ub:takesCourse ?z . }
		}`)
	if len(q.Where.Elements) != 2 {
		t.Fatalf("elements = %d", len(q.Where.Elements))
	}
	opt := q.Where.Elements[1].(Optional)
	inner := opt.Group.Elements[0].(TriplesBlock)
	if len(inner.Patterns) != 3 {
		t.Errorf("optional has %d patterns, want 3", len(inner.Patterns))
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	q := mustParse(t, `select ?s where { ?s <http://p> ?o . optional { ?o <http://q> ?z . } }`)
	if len(q.Where.Elements) != 2 {
		t.Error("lower-case keywords must work")
	}
	if _, ok := q.Where.Elements[1].(Optional); !ok {
		t.Error("lower-case optional not recognized")
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s <http://p> "a\"b\\c\nd" . }`)
	tb := q.Where.Elements[0].(TriplesBlock)
	if got := tb.Patterns[0].O.Term.Value; got != "a\"b\\c\nd" {
		t.Errorf("escaped literal = %q", got)
	}
}

func TestParseRejectsGarbageAfterQuery(t *testing.T) {
	if _, err := Parse(`SELECT * WHERE { ?s <http://p> ?o . } garbage`); err == nil {
		t.Error("trailing garbage must be rejected")
	}
}

func TestParserErrMentionsOffset(t *testing.T) {
	_, err := Parse(`SELECT ?s WHERE { ?s ?p }`)
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("error should mention offset: %v", err)
	}
}
