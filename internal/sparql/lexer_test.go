package sparql

import (
	"testing"
)

func lexOK(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.kind)
	}
	return out
}

func TestLexIRIVsLessThan(t *testing.T) {
	// '<' starts an IRI only when a '>' follows without whitespace.
	toks := lexOK(t, `FILTER (?a < 5 && ?b < ?c)`)
	for _, tk := range toks {
		if tk.kind == tokIRI {
			t.Fatalf("comparison lexed as IRI: %v", tk)
		}
	}
	toks2 := lexOK(t, `?a <http://x> ?b`)
	if toks2[1].kind != tokIRI || toks2[1].text != "http://x" {
		t.Fatalf("IRI not recognized: %v", toks2[1])
	}
	// Mixed on one line.
	toks3 := lexOK(t, `?s <http://p> ?o . FILTER (?o <= 3)`)
	sawIRI, sawLE := false, false
	for _, tk := range toks3 {
		if tk.kind == tokIRI {
			sawIRI = true
		}
		if tk.kind == tokPunct && tk.text == "<=" {
			sawLE = true
		}
	}
	if !sawIRI || !sawLE {
		t.Fatalf("mixed lexing failed: iri=%v le=%v", sawIRI, sawLE)
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexOK(t, `= != < <= > >= && || !`)
	want := []string{"=", "!=", "<", "<=", ">", ">=", "&&", "||", "!"}
	for i, w := range want {
		if toks[i].kind != tokPunct || toks[i].text != w {
			t.Errorf("token %d = %v, want %q", i, toks[i], w)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexOK(t, `42 3.25 -7`)
	for i, want := range []string{"42", "3.25", "-7"} {
		if toks[i].kind != tokNumber || toks[i].text != want {
			t.Errorf("number %d = %v, want %s", i, toks[i], want)
		}
	}
	// A trailing dot is a statement terminator, not a decimal point.
	toks2 := lexOK(t, `?x <p> 5 .`)
	if toks2[2].kind != tokNumber || toks2[2].text != "5" {
		t.Errorf("number before dot = %v", toks2[2])
	}
	if toks2[3].kind != tokPunct || toks2[3].text != "." {
		t.Errorf("terminator = %v", toks2[3])
	}
}

func TestLexLiteralForms(t *testing.T) {
	toks := lexOK(t, `"plain" "tagged"@en "typed"^^<http://dt>`)
	if toks[0].litValue != "plain" || toks[0].litLang != "" {
		t.Errorf("plain = %+v", toks[0])
	}
	if toks[1].litLang != "en" {
		t.Errorf("lang = %+v", toks[1])
	}
	if toks[2].litType != "http://dt" {
		t.Errorf("typed = %+v", toks[2])
	}
}

func TestLexPNameWithDots(t *testing.T) {
	// Local names can contain interior dots (e.g. version-like names).
	toks := lexOK(t, `ub:Course1.2 ?rest`)
	if toks[0].kind != tokPName || toks[0].text != "ub:Course1.2" {
		t.Fatalf("pname = %v", toks[0])
	}
	// A bare identifier without a colon is not a token.
	if _, err := lex(`bareword`); err == nil {
		t.Error("bare identifiers must be rejected")
	}
}

func TestLexBooleans(t *testing.T) {
	toks := lexOK(t, `true false`)
	for i, want := range []string{"true", "false"} {
		if toks[i].kind != tokLiteral || toks[i].litValue != want {
			t.Errorf("boolean %d = %+v", i, toks[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		`? <p> ?o`, // empty variable name
		`"bad\qescape"`,
		`@@@`,
		`_: foo`, // empty blank label
	}
	for _, src := range bad {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexBlankNodes(t *testing.T) {
	toks := lexOK(t, `_:b1 <p> _:b2`)
	if toks[0].kind != tokBlank || toks[0].text != "b1" {
		t.Errorf("blank = %v", toks[0])
	}
	if toks[2].kind != tokBlank || toks[2].text != "b2" {
		t.Errorf("blank = %v", toks[2])
	}
}

func TestLexEOFAlwaysLast(t *testing.T) {
	for _, src := range []string{"", "  ", "# only a comment", "?x"} {
		toks := lexOK(t, src)
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Errorf("lex(%q) must end with EOF: %v", src, kinds(toks))
		}
	}
}

func TestLexDefaultPrefix(t *testing.T) {
	toks := lexOK(t, `:localName`)
	if toks[0].kind != tokPName || toks[0].text != ":localName" {
		t.Fatalf("default-prefix name = %v", toks[0])
	}
}
