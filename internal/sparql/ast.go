// Package sparql parses the SPARQL subset the paper targets: SELECT queries
// over basic graph patterns with arbitrarily nested OPTIONAL patterns, plus
// UNION and safe FILTERs (which the engine handles by rewrite, Section 5.2).
package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Var is a SPARQL variable name without the leading '?'.
type Var string

// Node is one position of a triple pattern: either a variable or a concrete
// RDF term.
type Node struct {
	IsVar bool
	Var   Var
	Term  rdf.Term
}

// V returns a variable node.
func V(name string) Node { return Node{IsVar: true, Var: Var(name)} }

// TermNode returns a concrete-term node.
func TermNode(t rdf.Term) Node { return Node{Term: t} }

// IRINode returns a concrete IRI node.
func IRINode(iri string) Node { return Node{Term: rdf.NewIRI(iri)} }

func (n Node) String() string {
	if n.IsVar {
		return "?" + string(n.Var)
	}
	return n.Term.String()
}

// TriplePattern is one (S P O) pattern with variables.
type TriplePattern struct {
	S, P, O Node
}

func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// Vars returns the distinct variables of the pattern in S, P, O order.
func (tp TriplePattern) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.IsVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// HasVar reports whether the pattern mentions v.
func (tp TriplePattern) HasVar(v Var) bool {
	return (tp.S.IsVar && tp.S.Var == v) || (tp.P.IsVar && tp.P.Var == v) || (tp.O.IsVar && tp.O.Var == v)
}

// Group is a group graph pattern: the ordered elements between braces.
type Group struct {
	Elements []Element
}

// Element is one member of a group graph pattern.
type Element interface {
	isElement()
	String() string
}

// TriplesBlock is a run of triple patterns.
type TriplesBlock struct {
	Patterns []TriplePattern
}

func (TriplesBlock) isElement() {}
func (tb TriplesBlock) String() string {
	parts := make([]string, len(tb.Patterns))
	for i, tp := range tb.Patterns {
		parts[i] = tp.String() + " ."
	}
	return strings.Join(parts, " ")
}

// Optional is an OPTIONAL { ... } element.
type Optional struct {
	Group Group
}

func (Optional) isElement() {}
func (o Optional) String() string {
	return "OPTIONAL { " + o.Group.String() + " }"
}

// SubGroup is a nested { ... } element.
type SubGroup struct {
	Group Group
}

func (SubGroup) isElement() {}
func (sg SubGroup) String() string {
	return "{ " + sg.Group.String() + " }"
}

// Union is a chain of { } UNION { } alternatives.
type Union struct {
	Alternatives []Group
}

func (Union) isElement() {}
func (u Union) String() string {
	parts := make([]string, len(u.Alternatives))
	for i, g := range u.Alternatives {
		parts[i] = "{ " + g.String() + " }"
	}
	return strings.Join(parts, " UNION ")
}

// Filter is a FILTER(expr) element.
type Filter struct {
	Expr Expr
}

func (Filter) isElement() {}
func (f Filter) String() string {
	return "FILTER (" + f.Expr.String() + ")"
}

func (g Group) String() string {
	parts := make([]string, len(g.Elements))
	for i, e := range g.Elements {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  Var
	Desc bool
}

// Query is a parsed SELECT or ASK query.
type Query struct {
	Prefixes map[string]string
	// Ask marks an ASK query (existence check; Select is empty).
	Ask bool
	// Select lists the projected variables; nil means SELECT *.
	Select   []Var
	Distinct bool
	Where    Group
	// OrderBy lists the sort keys; empty means no ordering.
	OrderBy []OrderKey
	// Limit and Offset are the solution modifiers; -1 means unset.
	Limit, Offset int
}

// SelectAll reports whether the query projects every variable.
func (q *Query) SelectAll() bool { return q.Select == nil }

func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if q.SelectAll() {
		sb.WriteString("*")
	} else {
		for i, v := range q.Select {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString("?" + string(v))
		}
	}
	sb.WriteString(" WHERE { ")
	sb.WriteString(q.Where.String())
	sb.WriteString(" }")
	return sb.String()
}

// Expr is a filter expression.
type Expr interface {
	String() string
	// Vars appends the variables mentioned by the expression.
	Vars(map[Var]bool)
}

// CmpOp is a comparison operator.
type CmpOp string

// Comparison operators of the safe-filter subset.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Cmp is a binary comparison.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (c Cmp) String() string { return c.L.String() + " " + string(c.Op) + " " + c.R.String() }
func (c Cmp) Vars(m map[Var]bool) {
	c.L.Vars(m)
	c.R.Vars(m)
}

// LogicalOp is a boolean connective.
type LogicalOp string

// Boolean connectives.
const (
	OpAnd LogicalOp = "&&"
	OpOr  LogicalOp = "||"
)

// Logical is a binary boolean expression.
type Logical struct {
	Op   LogicalOp
	L, R Expr
}

func (l Logical) String() string {
	return "(" + l.L.String() + " " + string(l.Op) + " " + l.R.String() + ")"
}
func (l Logical) Vars(m map[Var]bool) {
	l.L.Vars(m)
	l.R.Vars(m)
}

// Not negates an expression.
type Not struct {
	E Expr
}

func (n Not) String() string      { return "!(" + n.E.String() + ")" }
func (n Not) Vars(m map[Var]bool) { n.E.Vars(m) }

// Bound is the bound(?v) builtin.
type Bound struct {
	V Var
}

func (b Bound) String() string      { return "bound(?" + string(b.V) + ")" }
func (b Bound) Vars(m map[Var]bool) { m[b.V] = true }

// ArithOp is an arithmetic operator.
type ArithOp string

// Arithmetic operators over numeric literals.
const (
	OpAdd ArithOp = "+"
	OpSub ArithOp = "-"
	OpMul ArithOp = "*"
	OpDiv ArithOp = "/"
)

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

func (a Arith) String() string {
	return "(" + a.L.String() + " " + string(a.Op) + " " + a.R.String() + ")"
}
func (a Arith) Vars(m map[Var]bool) {
	a.L.Vars(m)
	a.R.Vars(m)
}

// Regex is the regex(text, pattern[, flags]) builtin. Pattern and flags
// are restricted to constant string literals at parse time, and flags to
// the "i"/"s"/"m" subset that maps onto Go's RE2 flags.
type Regex struct {
	Arg            Expr
	Pattern, Flags string
}

func (r Regex) String() string {
	s := "regex(" + r.Arg.String() + ", " + quoteString(r.Pattern)
	if r.Flags != "" {
		s += ", " + quoteString(r.Flags)
	}
	return s + ")"
}
func (r Regex) Vars(m map[Var]bool) { r.Arg.Vars(m) }

// quoteString renders a SPARQL string literal with the escapes the lexer
// understands, so expression strings round-trip through the parser.
func quoteString(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			out = append(out, '\\', '"')
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		case '\t':
			out = append(out, '\\', 't')
		case '\r':
			out = append(out, '\\', 'r')
		default:
			out = append(out, c)
		}
	}
	out = append(out, '"')
	return string(out)
}

// ExprVar is a variable reference.
type ExprVar struct {
	V Var
}

func (e ExprVar) String() string      { return "?" + string(e.V) }
func (e ExprVar) Vars(m map[Var]bool) { m[e.V] = true }

// ExprTerm is a constant term.
type ExprTerm struct {
	Term rdf.Term
}

func (e ExprTerm) String() string  { return e.Term.String() }
func (ExprTerm) Vars(map[Var]bool) {}

// ExprVars returns the set of variables an expression mentions.
func ExprVars(e Expr) map[Var]bool {
	m := map[Var]bool{}
	e.Vars(m)
	return m
}

// GroupVars returns every variable mentioned in triple patterns of the
// group, recursively.
func GroupVars(g Group) map[Var]bool {
	m := map[Var]bool{}
	collectGroupVars(g, m)
	return m
}

func collectGroupVars(g Group, m map[Var]bool) {
	for _, el := range g.Elements {
		switch e := el.(type) {
		case TriplesBlock:
			for _, tp := range e.Patterns {
				for _, v := range tp.Vars() {
					m[v] = true
				}
			}
		case Optional:
			collectGroupVars(e.Group, m)
		case SubGroup:
			collectGroupVars(e.Group, m)
		case Union:
			for _, alt := range e.Alternatives {
				collectGroupVars(alt, m)
			}
		case Filter:
			// Filter variables do not bind; skip.
		default:
			panic(fmt.Sprintf("sparql: unknown element %T", el))
		}
	}
}
