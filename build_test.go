package lbr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/datagen"
)

// buildFixtureTriples is large enough (> the parallel-build gate) that
// Workers>1 exercises the sharded dictionary and the parallel pair-table
// scatter, with literals that stress the escaping rules.
func buildFixtureTriples() []Triple {
	var out []Triple
	for i := 0; i < 6000; i++ {
		s := fmt.Sprintf("s%03d", i%523)
		o := fmt.Sprintf("s%03d", (i*3+1)%523)
		out = append(out, TripleIRI(s, fmt.Sprintf("p%d", i%17), o))
		if i%7 == 0 {
			out = append(out, TripleLit(s, "note", fmt.Sprintf("say \"%d\"\tand \\%d\\\nend", i, i)))
		}
	}
	return out
}

func sortedLines(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func snapshot(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelBuildSnapshotByteIdentical is the acceptance-criteria pin:
// a store built with any worker count persists to exactly the bytes of
// the sequential build.
func TestParallelBuildSnapshotByteIdentical(t *testing.T) {
	triples := buildFixtureTriples()
	seq := NewStoreWithOptions(Options{Workers: 1})
	seq.AddAll(triples)
	if err := seq.Build(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, seq)
	for _, workers := range []int{0, 2, 3, 8} {
		s := NewStoreWithOptions(Options{Workers: workers})
		s.AddAll(triples)
		if err := s.Build(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := snapshot(t, s); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: snapshot differs from sequential build (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestLoadNTriplesParallelPipeline checks the parse pipeline end to end:
// same triples, same serialization, same first error as sequential.
func TestLoadNTriplesParallelPipeline(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# fixture\n")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&sb, "<http://x/s%d> <http://x/p%d> <http://x/o%d> .\n", i%301, i%9, (i+5)%301)
		if i%13 == 0 {
			fmt.Fprintf(&sb, "<http://x/s%d> <http://x/note> \"q \\\"x\\\" \\\\ %d\"@en .\n", i%301, i)
		}
	}
	src := sb.String()

	seq := NewStoreWithOptions(Options{Workers: 1})
	nSeq, err := seq.LoadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var wantNT bytes.Buffer
	if err := seq.WriteNTriples(&wantNT); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		s := NewStoreWithOptions(Options{Workers: workers})
		n, err := s.LoadNTriples(strings.NewReader(src))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != nSeq {
			t.Fatalf("workers=%d: loaded %d, want %d", workers, n, nSeq)
		}
		var got bytes.Buffer
		if err := s.WriteNTriples(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), wantNT.Bytes()) {
			t.Fatalf("workers=%d: serialized graph differs from sequential load", workers)
		}
	}

	// Error parity on a malformed line.
	bad := src + "not a triple\n"
	_, seqErr := NewStoreWithOptions(Options{Workers: 1}).LoadNTriples(strings.NewReader(bad))
	_, parErr := NewStoreWithOptions(Options{Workers: 4}).LoadNTriples(strings.NewReader(bad))
	if seqErr == nil || parErr == nil || seqErr.Error() != parErr.Error() {
		t.Fatalf("error parity: sequential %v vs parallel %v", seqErr, parErr)
	}
}

// TestEscapedLiteralSaveOpenRoundTrip pins the snapshot round-trip for
// literals with quotes, backslashes, newlines, tabs, language tags, and
// datatypes — the characters the N-Triples writer must escape.
func TestEscapedLiteralSaveOpenRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(TripleLit("doc1", "quote", `she said "hi"`))
	s.Add(TripleLit("doc1", "path", `C:\temp\file`))
	s.Add(TripleLit("doc2", "multi", "line one\nline two\ttabbed"))
	s.Add(TripleIRI("doc1", "ref", "doc2"))
	snap := snapshot(t, s)

	s2, err := OpenIndex(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("reloaded %d triples, want %d", s2.Len(), s.Len())
	}
	// OpenIndex reconstructs the graph in index (per-predicate) order, so
	// compare the statements as sets.
	var a, b bytes.Buffer
	if err := s.WriteNTriples(&a); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteNTriples(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := sortedLines(b.String()), sortedLines(a.String()); got != want {
		t.Fatalf("N-Triples round-trip differs:\n%s\nvs\n%s", got, want)
	}
	res, err := s2.Query(`SELECT * WHERE { <doc2> <multi> ?v . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Row(0)[0].Value != "line one\nline two\ttabbed" {
		t.Fatalf("escaped literal query = %v", res)
	}
	// The snapshot of the reloaded store must be byte-identical too.
	if got := snapshot(t, s2); !bytes.Equal(got, snap) {
		t.Fatal("re-saved snapshot differs from original")
	}
}

// TestFullScanAgainstStoreAndReloadedIndex is the acceptance-criteria pin
// for the dump query: every triple comes back, sequential and parallel,
// on the live store and on a reloaded snapshot.
func TestFullScanAgainstStoreAndReloadedIndex(t *testing.T) {
	g := datagen.MovieGraph(200)
	for _, workers := range []int{1, 4} {
		s := NewStoreWithOptions(Options{Workers: workers})
		s.LoadGraph(g)
		res, err := s.Query(`SELECT * WHERE { ?s ?p ?o . }`)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Len() != s.Len() {
			t.Fatalf("workers=%d: full scan %d rows, want Len()=%d", workers, res.Len(), s.Len())
		}
		// Row content must match the serialized graph exactly.
		want := map[string]bool{}
		var nt bytes.Buffer
		if err := s.WriteNTriples(&nt); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(nt.String()), "\n") {
			want[strings.TrimSuffix(line, " .")] = true
		}
		res.Iterate(func(m map[string]Term) bool {
			k := m["s"].String() + " " + m["p"].String() + " " + m["o"].String()
			if !want[k] {
				t.Errorf("workers=%d: row %s not in graph", workers, k)
			}
			delete(want, k)
			return true
		})
		if len(want) != 0 {
			t.Fatalf("workers=%d: %d triples missing from full scan", workers, len(want))
		}

		ok, err := s.Ask(`ASK { ?s ?p ?o . }`)
		if err != nil || !ok {
			t.Fatalf("workers=%d: ASK dump = %v/%v", workers, ok, err)
		}

		// Reload from the snapshot and repeat the count check.
		s2, err := OpenIndexWithOptions(bytes.NewReader(snapshot(t, s)), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res2, err := s2.Query(`SELECT * WHERE { ?s ?p ?o . }`)
		if err != nil {
			t.Fatalf("workers=%d reloaded: %v", workers, err)
		}
		if res2.Len() != s.Len() {
			t.Fatalf("workers=%d reloaded: %d rows, want %d", workers, res2.Len(), s.Len())
		}
	}
}

// TestWorkersNegativeTreatedAsOne pins the documented normalization.
func TestWorkersNegativeTreatedAsOne(t *testing.T) {
	if got := (Options{Workers: -3}).EffectiveWorkers(); got != 1 {
		t.Fatalf("Workers=-3 resolves to %d, want 1", got)
	}
	if got := (Options{Workers: 5}).EffectiveWorkers(); got != 5 {
		t.Fatalf("Workers=5 resolves to %d, want 5", got)
	}
	if got := (Options{}).EffectiveWorkers(); got < 1 {
		t.Fatalf("Workers=0 resolves to %d, want GOMAXPROCS >= 1", got)
	}
	// A negative count must behave exactly like the sequential store.
	var want string
	for _, workers := range []int{1, -7} {
		s := NewStoreWithOptions(Options{Workers: workers})
		s.LoadGraph(datagen.MovieGraph(50))
		res, err := s.Query(`SELECT * WHERE { ?s <http://example.org/actedIn> ?o . }`)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			want = res.String()
			continue
		}
		if res.String() != want {
			t.Fatalf("workers=%d differs from sequential", workers)
		}
	}
}

// TestQueryStreamContextCancelled pins that a cancelled context aborts
// the stream with context.Canceled instead of burning the full scan.
func TestQueryStreamContextCancelled(t *testing.T) {
	s := NewStore()
	s.LoadGraph(datagen.MovieGraph(2000))
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.QueryStreamContext(ctx, `SELECT * WHERE { ?s ?p ?o . }`, func(map[string]Term) bool {
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Mid-stream cancellation: stop the context after a few rows and
	// expect the error once the next check fires.
	ctx2, cancel2 := context.WithCancel(context.Background())
	n := 0
	err = s.QueryStreamContext(ctx2, `SELECT * WHERE { ?s ?p ?o . }`, func(map[string]Term) bool {
		n++
		if n == 3 {
			cancel2()
		}
		return true
	})
	cancel2()
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream err = %v", err)
	}
	if err == nil && n >= s.Len() {
		t.Fatalf("stream ran to completion (%d rows) despite cancellation", n)
	}
}
