package lbr

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bitmat"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// UpdateResult summarizes one ApplyUpdate call.
type UpdateResult struct {
	// Ops is the number of operations executed.
	Ops int `json:"ops"`
	// Inserted and Deleted count effective triple changes: inserts of
	// already-present triples and deletes of absent ones do not count.
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// Generation is the snapshot generation after the last operation.
	Generation uint64 `json:"generation"`
}

// ApplyUpdate parses and executes a SPARQL 1.1 Update request. Supported
// operations: INSERT DATA, DELETE DATA, DELETE/INSERT ... WHERE (and the
// DELETE WHERE shorthand), separated by ';'. Each operation sees the
// effects of the previous ones; a Modify operation's WHERE clause is
// evaluated against the store state from just before that operation, and
// its deletes apply before its inserts. Every effective operation starts a
// new MVCC snapshot generation — queries already running keep their view.
func (s *Store) ApplyUpdate(src string) (UpdateResult, error) {
	return s.ApplyUpdateContext(context.Background(), src)
}

// ApplyUpdateContext is ApplyUpdate with cancellation, checked between
// operations and during WHERE evaluation. Operations already applied when
// the context fires stay applied (the result reflects them); the update
// request as a whole is not atomic across its ';'-separated operations.
func (s *Store) ApplyUpdateContext(ctx context.Context, src string) (UpdateResult, error) {
	up, err := sparql.ParseUpdate(src)
	if err != nil {
		return UpdateResult{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var res UpdateResult
	for i := range up.Ops {
		op := &up.Ops[i]
		if err := ctx.Err(); err != nil {
			res.Generation = s.gen
			return res, err
		}
		var del, ins []Triple
		switch op.Kind {
		case sparql.UpdateInsertData:
			ins = op.Data
		case sparql.UpdateDeleteData:
			del = op.Data
		case sparql.UpdateModify:
			del, ins, err = s.evalModifyLocked(ctx, up, op)
			if err != nil {
				res.Generation = s.gen
				return res, err
			}
		}
		nd, ni, err := s.mutateLocked(del, ins, true)
		if err != nil {
			res.Generation = s.gen
			return res, err
		}
		res.Ops++
		res.Deleted += nd
		res.Inserted += ni
	}
	res.Generation = s.gen
	return res, nil
}

// evalModifyLocked evaluates a Modify operation's WHERE clause against the
// pre-operation snapshot and instantiates its templates. The caller holds
// mu.
func (s *Store) evalModifyLocked(ctx context.Context, up *sparql.Update, op *sparql.UpdateOp) (del, ins []Triple, err error) {
	eng, _, err := s.ensureSnapshotLocked()
	if err != nil {
		return nil, nil, err
	}
	q := &sparql.Query{Prefixes: up.Prefixes, Where: op.Where, Limit: -1, Offset: -1}
	r, err := eng.ExecuteContext(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	del = instantiateTemplates(op.DeleteTemplates, r.Vars, r.Rows)
	ins = instantiateTemplates(op.InsertTemplates, r.Vars, r.Rows)
	return del, ins, nil
}

// instantiateTemplates substitutes each solution into the templates. A
// template triple is skipped for solutions that leave any of its variables
// unbound (the W3C rule for OPTIONAL-produced nulls); the result is
// deduplicated in first-occurrence order.
func instantiateTemplates(tmpl []sparql.TriplePattern, vars []sparql.Var, rows []engine.Row) []Triple {
	if len(tmpl) == 0 || len(rows) == 0 {
		return nil
	}
	varIdx := make(map[sparql.Var]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}
	bindNode := func(n sparql.Node, row engine.Row) (rdf.Term, bool) {
		if !n.IsVar {
			return n.Term, true
		}
		i, ok := varIdx[n.Var]
		if !ok || row[i].IsZero() {
			return rdf.Term{}, false
		}
		return row[i], true
	}
	seen := map[string]bool{}
	var out []Triple
	for _, row := range rows {
		for _, tp := range tmpl {
			st, ok := bindNode(tp.S, row)
			if !ok {
				continue
			}
			pt, ok := bindNode(tp.P, row)
			if !ok {
				continue
			}
			ot, ok := bindNode(tp.O, row)
			if !ok {
				continue
			}
			t := Triple{S: st, P: pt, O: ot}
			if k := t.String(); !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// mutateLocked applies one mutation batch: deletes first, then inserts.
// It normalizes the batch to its effective operations (a delete of an
// absent triple or an insert of a present one is dropped; duplicates
// within the batch collapse), appends them to the WAL when log is set,
// applies them to the graph and the net-delta sets, and installs a fresh
// overlay snapshot when the store is built. It returns the effective
// delete and insert counts. The caller holds mu.
func (s *Store) mutateLocked(del, ins []Triple, log bool) (int, int, error) {
	effDel := make([]Triple, 0, len(del))
	delKeys := map[string]bool{}
	for _, t := range del {
		k := t.String()
		if delKeys[k] || !s.graph.Contains(t) {
			continue
		}
		delKeys[k] = true
		effDel = append(effDel, t)
	}
	effIns := make([]Triple, 0, len(ins))
	insKeys := map[string]bool{}
	for _, t := range ins {
		k := t.String()
		if insKeys[k] {
			continue
		}
		// Deletes apply first, so a triple deleted by this very batch can
		// be re-inserted by it.
		if s.graph.Contains(t) && !delKeys[k] {
			continue
		}
		insKeys[k] = true
		effIns = append(effIns, t)
	}
	if len(effDel) == 0 && len(effIns) == 0 {
		return 0, 0, nil
	}
	// WAL before state: if logging fails, nothing is applied.
	if log && s.wal != nil {
		if err := s.wal.append(effDel, effIns); err != nil {
			return 0, 0, fmt.Errorf("lbr: wal append: %w", err)
		}
		s.walAppends.Add(1)
	}
	s.graph.RemoveAll(effDel)
	s.graph.AddAll(effIns)
	for _, t := range effDel {
		k := t.String()
		if _, ok := s.ins[k]; ok {
			delete(s.ins, k) // deleting an overlay insert cancels it
		} else {
			s.del[k] = t // the triple was in the base
		}
	}
	for _, t := range effIns {
		k := t.String()
		if _, ok := s.del[k]; ok {
			delete(s.del, k) // re-inserting a deleted base triple cancels
		} else {
			s.ins[k] = t
		}
	}
	s.lsn++
	switch {
	case s.base != nil && s.eng != nil:
		if err := s.installOverlayLocked(); err != nil {
			// Never serve stale data: drop the snapshot and let the next
			// query fall back to a full rebuild.
			s.src, s.eng = nil, nil
			s.invalidateShardsLocked()
		}
	case s.eng != nil:
		s.src, s.eng = nil, nil
		s.invalidateShardsLocked()
	}
	if s.opts.CompactThreshold > 0 && len(s.ins)+len(s.del) >= s.opts.CompactThreshold {
		s.startCompactionLocked()
	}
	return len(effDel), len(effIns), nil
}

// DeltaSize reports the current number of delta entries (inserts plus
// deletes) versus the base index — the quantity CompactThreshold watches.
func (s *Store) DeltaSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ins) + len(s.del)
}

// Compact folds every accumulated delta into a freshly built base index
// and installs it as the new snapshot generation. It returns once the
// delta is empty (looping if mutations land during a build) and is safe to
// call concurrently with queries, mutations, and the background compactor.
// On an unbuilt store it performs the initial build.
func (s *Store) Compact() error {
	for {
		s.mu.Lock()
		if s.compacting {
			// A background compaction is in flight; wait for it and
			// re-examine the delta it leaves behind.
			ch := s.compactDone
			s.mu.Unlock()
			<-ch
			continue
		}
		if s.base == nil {
			err := s.buildLocked()
			s.mu.Unlock()
			return err
		}
		if len(s.ins) == 0 && len(s.del) == 0 {
			s.mu.Unlock()
			return nil
		}
		snap := append([]Triple(nil), s.graph.Triples()...)
		startLSN := s.lsn
		done := make(chan struct{})
		s.compacting, s.compactDone = true, done
		workers := s.opts.EffectiveWorkers()
		s.mu.Unlock()

		t0 := time.Now()
		bs, err := s.buildStateFromTriples(snap, workers)
		if err == nil {
			s.compactions.Add(1)
			s.compactionLastNS.Store(int64(time.Since(t0)))
		}

		s.mu.Lock()
		s.compacting = false
		close(done)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.finishCompactionLocked(bs, snap, startLSN)
		s.mu.Unlock()
		// Loop: a rebase during the build leaves a fresh delta to fold.
	}
}

// startCompactionLocked launches the background compactor for the current
// delta, if none is running. The caller holds mu.
func (s *Store) startCompactionLocked() {
	if s.compacting || s.base == nil || (len(s.ins) == 0 && len(s.del) == 0) {
		return
	}
	snap := append([]Triple(nil), s.graph.Triples()...)
	startLSN := s.lsn
	done := make(chan struct{})
	s.compacting, s.compactDone = true, done
	workers := s.opts.EffectiveWorkers()
	go func() {
		t0 := time.Now()
		bs, err := s.buildStateFromTriples(snap, workers)
		if err == nil {
			s.compactions.Add(1)
			s.compactionLastNS.Store(int64(time.Since(t0)))
		}
		s.mu.Lock()
		s.compacting = false
		close(done)
		if err == nil {
			s.finishCompactionLocked(bs, snap, startLSN)
		}
		s.mu.Unlock()
	}()
}

// builtState is the output of one compaction (or initial) build: the
// merged index every fallback path queries and, for a sharded store, the
// per-shard bases it was merged from.
type builtState struct {
	merged *bitmat.Index
	bases  []*bitmat.Index // nil for an unsharded store
}

// buildStateFromTriples builds a fresh base state for a triple snapshot.
// It reads only immutable store configuration (shard count, workers), so
// the background compactor calls it without holding mu.
func (s *Store) buildStateFromTriples(ts []Triple, workers int) (builtState, error) {
	if s.shards != nil {
		merged, bases, err := buildShardedState(ts, s.shards.n, workers)
		return builtState{merged: merged, bases: bases}, err
	}
	idx, err := buildIndexFromTriples(ts, workers)
	return builtState{merged: idx}, err
}

// buildIndexFromTriples builds a fresh index for a triple snapshot.
func buildIndexFromTriples(ts []Triple, workers int) (*bitmat.Index, error) {
	g := rdf.NewGraph()
	g.AddAll(ts)
	return bitmat.BuildParallel(g, workers)
}

// finishCompactionLocked installs a freshly built index. If no mutation
// landed during the build it becomes the exact new base (empty delta);
// otherwise the store rebases: the net delta is recomputed from scratch as
// the set difference between the current graph and the triples the new
// base covers, so a racing rebuild can never deposit dead delta entries —
// every entry is derived from the two concrete triple sets, not patched
// incrementally. The caller holds mu.
func (s *Store) finishCompactionLocked(bs builtState, built []Triple, startLSN uint64) {
	idx := bs.merged
	if s.shards != nil {
		// The fresh shard bases pair with the fresh merged index (same
		// dictionary); stale per-shard snapshots are retired by the
		// installSourceLocked below either way.
		s.shards.bases = bs.bases
	}
	if s.lsn == startLSN {
		s.installIndexLocked(idx)
		return
	}
	builtSet := make(map[string]Triple, len(built))
	for _, t := range built {
		builtSet[t.String()] = t
	}
	ins := map[string]Triple{}
	cur := make(map[string]bool, s.graph.Len())
	for _, t := range s.graph.Triples() {
		k := t.String()
		cur[k] = true
		if _, ok := builtSet[k]; !ok {
			ins[k] = t
		}
	}
	del := map[string]Triple{}
	for k, t := range builtSet {
		if !cur[k] {
			del[k] = t
		}
	}
	s.base = idx
	s.ins, s.del = ins, del
	if err := s.installOverlayLocked(); err != nil {
		s.src, s.eng = nil, nil
		s.invalidateShardsLocked()
	}
}
