// Package lbr is Left Bit Right: a SPARQL query processor for basic graph
// patterns with nested OPTIONAL patterns (left-outer joins), implementing
// the system of Atre, "Left Bit Right: For SPARQL Join Queries with
// OPTIONAL Patterns (Left-outer-joins)" (SIGMOD 2015, arXiv:1304.7799).
//
// The engine indexes an RDF graph as compressed BitMats (Section 4 of the
// paper), prunes the triples matching each triple pattern with semi-joins
// and clustered-semi-joins scheduled over the graph of join variables
// (Sections 3.2/3.3), and produces results with a multi-way pipelined join
// (Section 5.1), avoiding the nullification and best-match operators
// whenever the query's structure permits (Lemmas 3.3 and 3.4).
//
// Writes are first-class: ApplyUpdate executes SPARQL 1.1 Update
// requests against a delta overlay over the base index (no rebuild),
// MVCC snapshot generations keep in-flight queries on their view,
// Compact folds the delta in the background, and OpenWAL makes updates
// durable across a crash.
//
// Typical use:
//
//	store := lbr.NewStore()
//	store.Add(lbr.TripleIRI("s", "p", "o"))
//	if err := store.Build(); err != nil { ... }
//	res, err := store.Query(`SELECT * WHERE { ?s <p> ?o . }`)
package lbr

import (
	"context"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/bitmat"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/trace"
)

// Term is an RDF term (IRI, literal, or blank node). The zero Term is the
// NULL produced by OPTIONAL patterns.
type Term = rdf.Term

// Triple is one RDF statement.
type Triple = rdf.Triple

// Stats carries the per-query evaluation metrics of Section 6.1: init,
// prune and join times, triple counts before and after pruning, and
// whether best-match was needed.
type Stats = engine.Stats

// CacheStats carries the counters of the store's cross-query BitMat
// materialization cache (see Options.CacheBudget and Store.CacheStats).
type CacheStats = engine.CacheStats

// IRI builds an IRI term.
func IRI(iri string) Term { return rdf.NewIRI(iri) }

// Literal builds a plain literal term.
func Literal(v string) Term { return rdf.NewLiteral(v) }

// TripleIRI builds a triple of three IRIs.
func TripleIRI(s, p, o string) Triple { return rdf.T(s, p, o) }

// TripleLit builds a triple with a literal object.
func TripleLit(s, p, lit string) Triple { return rdf.TL(s, p, lit) }

// Options tune the engine; the zero value is the paper's configuration.
// The Disable* switches exist for the ablation benchmarks.
type Options struct {
	DisablePruning       bool
	DisableActivePruning bool
	NaiveJvarOrder       bool
	// Workers bounds the goroutines used by the parallel phases of the
	// store: the pruning and multi-way join of each query, the concurrent
	// execution of a query's UNION branches, and the build pipeline
	// (N-Triples parsing, dictionary sharding, and per-predicate BitMat
	// table construction). 0 means GOMAXPROCS; 1 forces sequential
	// execution; negative values are treated as 1. Parallel execution
	// returns rows identical to (and in the same order as) sequential
	// execution, and a parallel Build produces a dictionary, index, and
	// SaveIndex snapshot byte-identical to a sequential build's.
	Workers int
	// PartitionFactor oversubscribes the engine's adaptive join
	// partitioner: with w effective workers each multi-way join is split
	// into up to PartitionFactor*w partitions sized by the root pattern's
	// per-row triple counts, so a skewed predicate cannot serialize the
	// join behind one straggler partition. 0 selects the default (4);
	// negative values mean one partition per worker. Purely a performance
	// knob: every factor yields byte-identical rows in the same order.
	PartitionFactor int
	// CacheBudget bounds, in bytes, the store's cross-query BitMat
	// materialization cache: a cost-weighted LRU of pristine (unmasked,
	// unpruned) per-pattern matrices shared by all queries running against
	// one index snapshot, built single-flight and retired wholesale
	// whenever a mutation rebuilds the index. Queries clone cached
	// matrices before pruning, so results are byte-identical with the
	// cache on, off, or at any budget. 0 selects the default (64 MiB);
	// negative values disable the cache.
	CacheBudget int64
	// Shards, when 2 or more, hash-partitions the graph by subject into
	// that many in-process shards: each shard builds, overlays, compacts,
	// and caches its own BitMat index over a shared global dictionary, and
	// subject-star queries (every triple pattern sharing one subject
	// variable) execute per shard concurrently, merged in deterministic
	// shard order. Queries outside that class, and every persistence and
	// baseline path, run against the merged view of all shards, which is
	// byte-identical to the single index an unsharded store builds. 0 and
	// 1 (and negative values) select today's single monolithic index.
	Shards int
	// CompactThreshold, when positive, starts a background compaction as
	// soon as the store's delta overlay accumulates that many entries
	// (inserts plus deletes versus the base index). 0 disables automatic
	// compaction: deltas accumulate until Compact is called explicitly or
	// an operation that needs a compacted index (SaveIndex, QueryBaseline,
	// IndexSizes) forces one. Compaction never changes query results —
	// in-flight queries keep their snapshot, and the folded index answers
	// exactly like the overlay it replaces.
	CompactThreshold int
	// SlowQueryThreshold, when positive together with SlowQueryLog,
	// enables the slow-query log: QueryContext and QueryStreamRows then
	// run every query with a tracer attached, and a query whose wall time
	// reaches the threshold appends one JSON line — timestamp, stable
	// query hash (trace.QueryHash), duration, row count, the (truncated)
	// query text, and the full span tree — to SlowQueryLog. Queries under
	// the threshold pay only the tracing cost (a few spans per stage);
	// results are byte-identical either way. 0 (or a nil SlowQueryLog)
	// disables slow-query logging entirely, and queries run with no tracer
	// attached — the instrumentation then reduces to nil checks.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query JSON lines. Writes are
	// serialized by the store (one line per slow query, never interleaved),
	// so any io.Writer works — a file, os.Stderr, a log pipe.
	SlowQueryLog io.Writer
}

// defaultCacheBudget is the materialization cache bound CacheBudget = 0
// selects.
const defaultCacheBudget = 64 << 20

// EffectiveCacheBudget reports the byte bound the options resolve to:
// CacheBudget when positive, 64 MiB when zero, and 0 (cache disabled) for
// negative values.
func (o Options) EffectiveCacheBudget() int64 {
	switch {
	case o.CacheBudget > 0:
		return o.CacheBudget
	case o.CacheBudget == 0:
		return defaultCacheBudget
	default:
		return 0
	}
}

// EffectiveWorkers reports the worker count the options resolve to:
// Workers when positive, GOMAXPROCS when zero, and 1 for negative values.
func (o Options) EffectiveWorkers() int { return o.engineOptions().EffectiveWorkers() }

// EffectiveShards reports the shard count the options resolve to: Shards
// when 2 or more, otherwise 1 (a single monolithic index).
func (o Options) EffectiveShards() int {
	if o.Shards >= 2 {
		return o.Shards
	}
	return 1
}

// Store holds an RDF graph and, after Build, its BitMat index plus a delta
// overlay of uncompacted mutations.
//
// A Store is safe for concurrent use: any number of goroutines may call
// Query, QueryContext, Ask, Explain, and the other read methods while
// others call Add, Remove, ApplyUpdate, or Build. Queries never observe a
// half-applied mutation — they run against an immutable MVCC snapshot (a
// compacted index, or the base index plus a delta overlay), so a query
// racing a mutation sees either the pre- or post-mutation data, never a
// mixture, and a query started before an update finishes with its original
// view even while later generations are installed.
type Store struct {
	mu    sync.RWMutex
	graph *rdf.Graph
	// base is the last compacted index; src is what queries actually run
	// against: base itself when the delta is empty, or an overlay merging
	// the net delta over it. Both are immutable once installed.
	base *bitmat.Index
	src  bitmat.Source
	eng  *engine.Engine
	opts Options
	// cache is the cross-query BitMat materialization cache (nil when
	// Options.CacheBudget is negative). gen counts source snapshots: every
	// install — rebuild, overlay, or compaction — bumps it and retires the
	// previous generation's cache entries, so a query can never read a
	// matrix from a snapshot other than the one it runs against.
	cache *engine.MatCache
	gen   uint64

	// ins and del are the net delta versus base, keyed by the triple's
	// N-Triples rendering: ins holds triples present in the graph but not
	// the base, del triples present in the base but removed since. An
	// insert of a deleted triple (or vice versa) cancels, so the two maps
	// are always disjoint and minimal.
	ins map[string]Triple
	del map[string]Triple

	// lsn counts applied mutation batches; a compaction records the lsn of
	// its input snapshot and rebases instead of installing when mutations
	// landed while it built.
	lsn uint64
	wal *wal

	compacting  bool
	compactDone chan struct{} // closed when the in-flight compaction finishes

	// shards holds the subject-hash shard indexes, engines, and caches of
	// a sharded store (Options.Shards >= 2); nil otherwise. See shards.go.
	shards *shardState

	// walCheckpointLSN records the store LSN at the last WAL checkpoint
	// (a SaveIndex/SaveShards that proved every logged mutation folded
	// into the persisted base, letting the log truncate to zero).
	walCheckpointLSN uint64

	// slowMu serializes slow-query log lines so concurrent slow queries
	// never interleave bytes on the shared writer.
	slowMu sync.Mutex

	// Durability and compaction counters for the /metrics endpoint (see
	// WALStats). Atomics, not mu-guarded: the compaction timings are
	// recorded off-lock and metrics scrapes must not contend with writers.
	walAppends       atomic.Int64
	walReplayed      atomic.Int64
	walCheckpoints   atomic.Int64
	compactions      atomic.Int64
	compactionLastNS atomic.Int64
}

// NewStore returns an empty store.
func NewStore() *Store { return NewStoreWithOptions(Options{}) }

// NewStoreWithOptions returns an empty store with engine options.
func NewStoreWithOptions(opts Options) *Store {
	return &Store{
		graph:  rdf.NewGraph(),
		opts:   opts,
		cache:  engine.NewMatCache(opts.EffectiveCacheBudget()),
		ins:    map[string]Triple{},
		del:    map[string]Triple{},
		shards: newShardState(opts),
	}
}

// Options returns the options the store was constructed with. They are
// immutable for the store's lifetime, so layers above (e.g. a server
// sizing its admission control from EffectiveWorkers) can read them
// without synchronization.
func (s *Store) Options() Options { return s.opts }

// Add inserts one triple. It reports whether the triple was new. On a
// built store the triple lands in the delta overlay and is visible to the
// next query immediately, without an index rebuild.
func (s *Store) Add(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, n, err := s.mutateLocked(nil, []Triple{t}, true)
	return err == nil && n > 0
}

// AddAll inserts triples and returns how many were new.
func (s *Store) AddAll(ts []Triple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, n, err := s.mutateLocked(nil, ts, true)
	if err != nil {
		return 0
	}
	return n
}

// Remove deletes one triple. It reports whether the triple was present.
// Like Add, the removal takes effect through the delta overlay on a built
// store — no rebuild.
func (s *Store) Remove(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _, err := s.mutateLocked([]Triple{t}, nil, true)
	return err == nil && n > 0
}

// RemoveAll deletes triples and returns how many were present.
func (s *Store) RemoveAll(ts []Triple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _, err := s.mutateLocked(ts, nil, true)
	if err != nil {
		return 0
	}
	return n
}

// LoadNTriples reads N-Triples into the store, returning the number of
// statements added. With Options.Workers other than 1 the parse runs as a
// pipeline (reader, parallel line parsing, in-order merge), producing the
// same triples, order, and first error as a sequential parse.
func (s *Store) LoadNTriples(r io.Reader) (int, error) {
	// opts is immutable after construction, so reading it without the
	// store lock is safe here.
	g, err := rdf.ReadNTriplesParallel(r, s.opts.EffectiveWorkers())
	if err != nil {
		return 0, err
	}
	return s.AddAll(g.Triples()), nil
}

// LoadGraph bulk-adds another graph's triples.
func (s *Store) LoadGraph(g *rdf.Graph) int { return s.AddAll(g.Triples()) }

// Len reports the number of distinct triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.Len()
}

// GraphStats summarizes the data the way Table 6.1 does.
type GraphStats = rdf.Stats

// Stats computes dataset characteristics.
func (s *Store) Stats() GraphStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.Stats()
}

// Build constructs the dictionary and the BitMat index. It must be called
// before Query, and again after any mutation — or left to the first query,
// which builds lazily (single-flight: concurrent queries on an unbuilt
// store trigger exactly one build).
func (s *Store) Build() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buildLocked()
}

// engineOptions maps the public options onto the engine's. Both build
// paths (Build and OpenIndexWithOptions) go through this, so a new field
// cannot be threaded through one and forgotten in the other.
func (o Options) engineOptions() engine.Options {
	return engine.Options{
		DisablePruning:       o.DisablePruning,
		DisableActivePruning: o.DisableActivePruning,
		NaiveJvarOrder:       o.NaiveJvarOrder,
		Workers:              o.Workers,
		PartitionFactor:      o.PartitionFactor,
	}
}

// buildLocked rebuilds the index snapshot from the full graph, folding any
// accumulated delta; the caller holds mu. The build fans the dictionary
// encode and the per-predicate table construction across Options.Workers
// goroutines; any worker count yields an identical index (see
// bitmat.BuildParallel).
func (s *Store) buildLocked() error {
	if s.shards != nil {
		return s.buildShardedLocked()
	}
	idx, err := bitmat.BuildParallel(s.graph, s.opts.EffectiveWorkers())
	if err != nil {
		return err
	}
	s.installIndexLocked(idx)
	return nil
}

// installIndexLocked adopts idx as the new compacted base covering the
// graph exactly: the delta empties and queries run straight against the
// index. The caller holds mu.
func (s *Store) installIndexLocked(idx *bitmat.Index) {
	s.base = idx
	s.ins = map[string]Triple{}
	s.del = map[string]Triple{}
	s.installSourceLocked(idx)
}

// installSourceLocked adopts src as the new immutable query snapshot: it
// starts the next snapshot generation, retires the previous generation's
// cached materializations atomically, and binds a fresh engine to the new
// generation's cache view. The caller holds mu.
func (s *Store) installSourceLocked(src bitmat.Source) {
	s.gen++
	s.src = src
	s.eng = engine.NewWithCache(src, s.opts.engineOptions(), s.cache.Advance(s.gen))
	// Per-shard snapshots are generation-bound like the merged one; the
	// next shardable query rebuilds them over the new delta.
	s.invalidateShardsLocked()
}

// installOverlayLocked rebuilds the delta overlay over the current base
// from the net ins/del sets and installs it as the query snapshot (or the
// bare base when the delta is empty). Delta triples are fed to the overlay
// in key order, so reconstructing the same logical state — on WAL replay,
// or with any Workers count — assigns identical extended-dictionary IDs.
// The caller holds mu and guarantees base is non-nil.
func (s *Store) installOverlayLocked() error {
	if len(s.ins) == 0 && len(s.del) == 0 {
		s.installSourceLocked(s.base)
		return nil
	}
	ov, err := bitmat.NewOverlay(s.base, sortedTriples(s.ins), sortedTriples(s.del))
	if err != nil {
		return err
	}
	s.installSourceLocked(ov)
	return nil
}

// sortedTriples returns the map's triples sorted by their N-Triples key.
func sortedTriples(m map[string]Triple) []Triple {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Triple, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// CacheStats reports the counters of the cross-query materialization
// cache: hits, misses, evictions, generation invalidations, and current
// residency. All zeroes when the cache is disabled (negative
// Options.CacheBudget). Safe to call concurrently with queries and
// mutation.
func (s *Store) CacheStats() engine.CacheStats { return s.cache.Stats() }

// RegexCacheSize reports the number of compiled FILTER regex(…) patterns
// the engine currently caches. The cache is process-wide (patterns come
// from query text and are shared across stores and shards) and
// size-bounded; the server surfaces this on /metrics.
func RegexCacheSize() int { return engine.RegexCacheSize() }

// SnapshotGeneration reports the generation number of the current index
// snapshot, building it first if the store was mutated or never built.
// Generations increase by one per (re)build, so two equal generations
// bracket an unchanged index — the key layers above use to cache derived
// artifacts (the HTTP server's result cache keys on it). Under concurrent
// mutation the value is a snapshot in time, exactly like the data a
// concurrent query sees.
func (s *Store) SnapshotGeneration() (uint64, error) {
	if _, _, err := s.ensureSnapshot(); err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen, nil
}

// Built reports whether a query snapshot covering every mutation so far
// exists. Under concurrent mutation the answer is advisory: it is accurate
// at the instant of the call but another goroutine's Add may invalidate it
// before the caller acts on it. Queries do not need Built — they build on
// demand.
func (s *Store) Built() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng != nil
}

// Generation reports the current snapshot generation without building
// anything: 0 until the first snapshot exists. Metrics endpoints use this
// in preference to SnapshotGeneration, which would force a build.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// ensureSnapshot returns the current engine and its BitMat source,
// building them (single-flight) when the store was never built. Both are
// immutable snapshots: using them is safe while other goroutines mutate
// the store.
func (s *Store) ensureSnapshot() (*engine.Engine, bitmat.Source, error) {
	s.mu.RLock()
	eng, src := s.eng, s.src
	s.mu.RUnlock()
	if eng != nil && src != nil {
		return eng, src, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ensureSnapshotLocked()
}

// ensureSnapshotLocked is ensureSnapshot for callers already holding mu.
func (s *Store) ensureSnapshotLocked() (*engine.Engine, bitmat.Source, error) {
	if s.eng == nil || s.src == nil {
		if s.base != nil {
			if err := s.installOverlayLocked(); err != nil {
				return nil, nil, err
			}
		} else if err := s.buildLocked(); err != nil {
			return nil, nil, err
		}
	}
	return s.eng, s.src, nil
}

func (s *Store) ensureEngine() (*engine.Engine, error) {
	eng, _, err := s.ensureSnapshot()
	return eng, err
}

// ensureIndex returns a compacted index covering every mutation so far,
// folding any outstanding delta first. SaveIndex, QueryBaseline, and
// IndexSizes route through it: extended overlay dictionaries are never
// persisted or handed to the relational baseline.
func (s *Store) ensureIndex() (*bitmat.Index, error) {
	if err := s.Compact(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base, nil
}

// Result is a materialized query result. Columns align with Vars; a zero
// Term is a NULL.
type Result struct {
	Vars  []string
	rows  []engine.Row
	Stats Stats
}

// Len reports the number of result rows.
func (r *Result) Len() int { return len(r.rows) }

// Row returns row i. The row is aligned with Vars: unbound variables
// (from OPTIONAL patterns) appear as zero Terms, never as a shorter row.
func (r *Result) Row(i int) []Term { return r.rows[i] }

// Rows returns all rows, each aligned with Vars (a zero Term is an
// unbound OPTIONAL variable). It is the loop-friendly companion to
// Row(i): callers range over it instead of indexing Len() times. The
// returned slices share the result's backing arrays and must not be
// mutated.
func (r *Result) Rows() [][]Term {
	out := make([][]Term, len(r.rows))
	for i := range r.rows {
		out[i] = r.rows[i]
	}
	return out
}

// Iterate calls fn for each row as a variable-to-term map. NULL columns
// are omitted from the map — the SPARQL view, where an OPTIONAL variable
// is simply unbound — so a row's map may have fewer entries than Vars.
// This is deliberately asymmetric with String, Rows, and the
// internal/results serializers, which preserve column order and represent
// unbound variables explicitly (String prints NULL; the serializers emit
// the format's empty/absent-binding form). Iteration stops early if fn
// returns false.
func (r *Result) Iterate(fn func(map[string]Term) bool) {
	for _, row := range r.rows {
		m := make(map[string]Term, len(r.Vars))
		for i, v := range r.Vars {
			if !row[i].IsZero() {
				m[v] = row[i]
			}
		}
		if !fn(m) {
			return
		}
	}
}

// String renders the result as a readable table: one tab-separated line
// per row in Vars order, with unbound OPTIONAL variables printed as NULL
// (unlike Iterate, which omits them from its maps).
func (r *Result) String() string {
	var sb strings.Builder
	for i, v := range r.Vars {
		if i > 0 {
			sb.WriteByte('\t')
		}
		sb.WriteString("?" + v)
	}
	sb.WriteByte('\n')
	for _, row := range r.rows {
		for i, t := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			if t.IsZero() {
				sb.WriteString("NULL")
			} else {
				sb.WriteString(t.String())
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Query parses and executes a SPARQL query.
func (s *Store) Query(src string) (*Result, error) {
	return s.QueryContext(context.Background(), src)
}

// QueryContext is Query with cancellation: a done context aborts the
// multi-way join and returns ctx.Err(). A query concurrent with mutation
// runs on the most recently built index snapshot. On a sharded store,
// subject-star queries scatter across the shards and gather in shard
// order; everything else runs on the merged view. When the slow-query log
// is enabled (Options.SlowQueryThreshold and SlowQueryLog), the query runs
// traced and a slow one is logged; results are identical either way.
func (s *Store) QueryContext(ctx context.Context, src string) (*Result, error) {
	if !s.slowLogging() {
		return s.queryTracedContext(ctx, src, nil)
	}
	t := trace.New("query")
	start := time.Now()
	res, err := s.queryTracedContext(ctx, src, t.Root())
	t.Finish()
	rows := -1
	if res != nil {
		rows = res.Len()
	}
	s.logSlowQuery(src, time.Since(start), rows, t.Root(), err)
	return res, err
}

// queryTracedContext is the one execution path under Query, QueryContext,
// and QueryTrace: parse, try the sharded scatter-gather, fall back to the
// merged engine. sp, when non-nil, receives the query's span tree; a nil
// sp costs nothing beyond the nil checks.
func (s *Store) queryTracedContext(ctx context.Context, src string, sp *trace.Span) (*Result, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.Set("query_hash", trace.QueryHash(src))
	}
	res, handled, err := s.queryShardedContext(ctx, q, sp)
	if !handled {
		eng, eerr := s.ensureEngineTraced(sp)
		if eerr != nil {
			return nil, eerr
		}
		res, err = eng.ExecuteTraceContext(ctx, q, sp)
	}
	if err != nil {
		return nil, err
	}
	vars := make([]string, len(res.Vars))
	for i, v := range res.Vars {
		vars[i] = string(v)
	}
	return &Result{Vars: vars, rows: res.Rows, Stats: res.Stats}, nil
}

// Ask evaluates an ASK query (or the WHERE pattern of any query) as an
// existence check, stopping at the first solution.
func (s *Store) Ask(src string) (bool, error) {
	return s.AskContext(context.Background(), src)
}

// AskContext is Ask with cancellation: a done context aborts the
// existence check in any phase and returns ctx.Err(). On a sharded store
// a subject-star ASK probes the shards one by one, stopping at the first
// shard with a solution.
func (s *Store) AskContext(ctx context.Context, src string) (bool, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return false, err
	}
	if found, handled, err := s.askShardedContext(ctx, q); handled {
		return found, err
	}
	eng, err := s.ensureEngine()
	if err != nil {
		return false, err
	}
	return eng.AskContext(ctx, q)
}

// Explain returns a plan summary: the serialized tree, the GoSN edges, and
// the classification flags of each union-free branch.
func (s *Store) Explain(src string) (string, error) {
	eng, err := s.ensureEngine()
	if err != nil {
		return "", err
	}
	q, err := sparql.Parse(src)
	if err != nil {
		return "", err
	}
	return eng.Describe(q)
}

// BaselinePolicy selects a comparator engine for QueryBaseline.
type BaselinePolicy int

const (
	// MonetDBLike evaluates the query tree as written (bulk column-store
	// style).
	MonetDBLike BaselinePolicy = iota
	// VirtuosoLike reorders patterns by selectivity and pushes selective
	// bindings sideways.
	VirtuosoLike
)

// QueryBaseline executes the query on the relational comparator engine,
// for benchmarking against LBR. The baseline scans the current snapshot
// directly — base plus delta overlay — so comparing against a store with
// uncompacted updates no longer forces a full compaction first.
func (s *Store) QueryBaseline(src string, policy BaselinePolicy) (*Result, error) {
	_, snap, err := s.ensureSnapshot()
	if err != nil {
		return nil, err
	}
	bsrc, ok := snap.(baseline.Source)
	if !ok {
		// Every store-installed snapshot (index or overlay) satisfies
		// baseline.Source; an exotic composition falls back to a compacted
		// index.
		idx, ierr := s.ensureIndex()
		if ierr != nil {
			return nil, ierr
		}
		bsrc = idx
	}
	pol := baseline.OriginalOrder
	if policy == VirtuosoLike {
		pol = baseline.SelectiveMaster
	}
	res, err := baseline.New(bsrc, pol).ExecuteString(src)
	if err != nil {
		return nil, err
	}
	vars := make([]string, len(res.Vars))
	for i, v := range res.Vars {
		vars[i] = string(v)
	}
	rows := make([]engine.Row, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = engine.Row(r)
	}
	return &Result{Vars: vars, rows: rows}, nil
}

// IndexSizes reports the on-disk footprint of the full BitMat family under
// the hybrid codec and under pure RLE (the Section 4 comparison).
func (s *Store) IndexSizes() (bitmat.SizeReport, error) {
	idx, err := s.ensureIndex()
	if err != nil {
		return bitmat.SizeReport{}, err
	}
	return idx.Sizes(), nil
}

// WriteNTriples serializes the store's graph. It holds the store read lock
// for the duration of the write, blocking mutation but not queries.
func (s *Store) WriteNTriples(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return rdf.WriteNTriples(w, s.graph)
}

// Version identifies the library release.
const Version = "1.0.0"
