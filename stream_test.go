package lbr

import (
	"context"
	"testing"
)

// TestQueryStreamRowsHeaderAndAlignment pins the QueryStreamRows contract:
// fn is first called with a nil row carrying the header, then once per
// solution with the row aligned to vars — unbound OPTIONAL variables as
// zero Terms, never shorter rows.
func TestQueryStreamRowsHeaderAndAlignment(t *testing.T) {
	s := movieStore(t)
	var headerVars []string
	var rows [][]Term
	calls := 0
	err := s.QueryStreamRows(context.Background(), movieQ2, func(vars []string, row []Term) bool {
		calls++
		if row == nil {
			if calls != 1 {
				t.Errorf("header call arrived at position %d, want 1", calls)
			}
			headerVars = append([]string(nil), vars...)
			return true
		}
		r := append([]Term(nil), row...)
		rows = append(rows, r)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(headerVars) != 2 || headerVars[0] != "friend" || headerVars[1] != "sitcom" {
		t.Fatalf("header vars = %v", headerVars)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	sawNull := false
	for _, r := range rows {
		if len(r) != len(headerVars) {
			t.Fatalf("row %v not aligned with vars %v", r, headerVars)
		}
		if r[0].Value == "Larry" {
			if !r[1].IsZero() {
				t.Errorf("Larry's sitcom should be a zero Term, got %v", r[1])
			}
			sawNull = true
		}
	}
	if !sawNull {
		t.Error("no NULL row streamed")
	}
}

// TestQueryStreamRowsZeroRows: the header still arrives when the query has
// no solutions, so serializers can emit a complete empty document.
func TestQueryStreamRowsZeroRows(t *testing.T) {
	s := movieStore(t)
	headerSeen := false
	rows := 0
	err := s.QueryStreamRows(context.Background(),
		`SELECT * WHERE { <Nobody> <hasFriend> ?x . }`,
		func(vars []string, row []Term) bool {
			if row == nil {
				headerSeen = true
				if len(vars) != 1 || vars[0] != "x" {
					t.Errorf("vars = %v", vars)
				}
				return true
			}
			rows++
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if !headerSeen || rows != 0 {
		t.Errorf("headerSeen=%v rows=%d", headerSeen, rows)
	}
}

// TestQueryStreamRowsProjectionOrder: an explicit SELECT clause dictates
// the column order even though projected queries materialize internally.
func TestQueryStreamRowsProjectionOrder(t *testing.T) {
	s := movieStore(t)
	q := `SELECT ?sitcom ?friend WHERE {
		<Jerry> <hasFriend> ?friend .
		OPTIONAL {
			?friend <actedIn> ?sitcom .
			?sitcom <location> <NewYorkCity> . } }`
	var headerVars []string
	rows := 0
	err := s.QueryStreamRows(context.Background(), q, func(vars []string, row []Term) bool {
		if row == nil {
			headerVars = append([]string(nil), vars...)
			return true
		}
		rows++
		if len(row) != 2 {
			t.Errorf("row %v not aligned", row)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(headerVars) != 2 || headerVars[0] != "sitcom" || headerVars[1] != "friend" {
		t.Fatalf("projected vars = %v, want [sitcom friend]", headerVars)
	}
	if rows != 2 {
		t.Errorf("rows = %d, want 2", rows)
	}
}

// TestQueryStreamRowsMatchesQuery pins that streaming and materialized
// execution agree row for row — including the solution modifiers and
// cheap FILTER substitution the streaming fast path must either apply
// inline (LIMIT/OFFSET, FILTER) or fall back to materializing for
// (ORDER BY), and never silently drop.
func TestQueryStreamRowsMatchesQuery(t *testing.T) {
	s := movieStore(t)
	queries := []string{
		`SELECT * WHERE { ?a <actedIn> ?b . }`,
		`SELECT * WHERE { ?a <actedIn> ?b . } ORDER BY ?b`,
		`SELECT * WHERE { ?a <actedIn> ?b . } ORDER BY ?b LIMIT 2`,
		`SELECT * WHERE { ?a <actedIn> ?b . } LIMIT 2`,
		`SELECT * WHERE { ?a <actedIn> ?b . } LIMIT 0`,
		`SELECT * WHERE { ?a <actedIn> ?b . } OFFSET 2`,
		`SELECT * WHERE { ?a <actedIn> ?b . } LIMIT 2 OFFSET 1`,
		`SELECT * WHERE { <Jerry> <hasFriend> ?f . FILTER(?f = <Julia>) }`,
		`SELECT * WHERE { ?s ?p ?o . } LIMIT 3`,
		movieQ2,
	}
	for _, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want := ""
		for _, row := range res.Rows() {
			for _, term := range row {
				want += term.String() + "|"
			}
			want += "\n"
		}
		got := ""
		err = s.QueryStreamRows(context.Background(), q, func(vars []string, row []Term) bool {
			if row == nil {
				if len(vars) != len(res.Vars) {
					t.Errorf("%s: streamed vars %v, want %v", q, vars, res.Vars)
				}
				return true
			}
			for _, term := range row {
				got += term.String() + "|"
			}
			got += "\n"
			return true
		})
		if err != nil {
			t.Fatalf("%s: stream: %v", q, err)
		}
		if got != want {
			t.Errorf("%s:\nstreamed %q\nwant     %q", q, got, want)
		}
	}
}

// TestQueryStreamRowsEarlyStop: returning false from the header call (or a
// row call) ends the enumeration without error.
func TestQueryStreamRowsEarlyStop(t *testing.T) {
	s := movieStore(t)
	calls := 0
	err := s.QueryStreamRows(context.Background(), movieQ2, func(_ []string, _ []Term) bool {
		calls++
		return false
	})
	if err != nil || calls != 1 {
		t.Errorf("err=%v calls=%d, want nil/1", err, calls)
	}
}

// TestQueryStreamRowsCancelled: a dead context yields ctx.Err() before fn
// ever runs.
func TestQueryStreamRowsCancelled(t *testing.T) {
	s := movieStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := s.QueryStreamRows(ctx, movieQ2, func([]string, []Term) bool {
		called = true
		return true
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("fn was called under a cancelled context")
	}
}

// TestAskIgnoresSolutionModifiers pins Ask's documented contract: it
// checks whether the WHERE pattern has a solution, stopping at the first
// one — ORDER BY must not force materialization and LIMIT 0/OFFSET must
// not make a satisfiable pattern look empty.
func TestAskIgnoresSolutionModifiers(t *testing.T) {
	s := movieStore(t)
	for _, q := range []string{
		`SELECT * WHERE { ?a <actedIn> ?b . } LIMIT 0`,
		`SELECT * WHERE { ?a <actedIn> ?b . } ORDER BY ?b LIMIT 1`,
		`SELECT * WHERE { ?a <actedIn> ?b . } OFFSET 100`,
	} {
		ok, err := s.Ask(q)
		if err != nil {
			t.Errorf("%s: %v", q, err)
		} else if !ok {
			t.Errorf("%s: Ask = false for a satisfiable pattern", q)
		}
	}
}

// TestAskContextCancelled: AskContext honors a dead context.
func TestAskContextCancelled(t *testing.T) {
	s := movieStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.AskContext(ctx, `ASK { <Jerry> <hasFriend> ?x . }`); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// And still answers when the context is live.
	ok, err := s.AskContext(context.Background(), `ASK { <Jerry> <hasFriend> ?x . }`)
	if err != nil || !ok {
		t.Errorf("ok=%v err=%v", ok, err)
	}
}

// TestResultRowsAndIterateAsymmetry pins the documented asymmetry: Rows
// (like Row and String) keeps column order with explicit zero-Term cells,
// while Iterate's maps omit unbound variables entirely.
func TestResultRowsAndIterateAsymmetry(t *testing.T) {
	s := movieStore(t)
	res, err := s.Query(movieQ2)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != res.Len() {
		t.Fatalf("Rows() len = %d, want %d", len(rows), res.Len())
	}
	nullRows := 0
	for i, r := range rows {
		if len(r) != len(res.Vars) {
			t.Fatalf("row %d misaligned: %v vs vars %v", i, r, res.Vars)
		}
		for j := range r {
			if r[j] != res.Row(i)[j] {
				t.Fatalf("Rows()[%d] disagrees with Row(%d)", i, i)
			}
		}
		if r[1].IsZero() {
			nullRows++
		}
	}
	if nullRows != 1 {
		t.Fatalf("null rows = %d, want 1", nullRows)
	}
	// Iterate omits the unbound column; exactly one map is short.
	short := 0
	res.Iterate(func(m map[string]Term) bool {
		if len(m) < len(res.Vars) {
			short++
			if _, bound := m["sitcom"]; bound {
				t.Error("unbound sitcom present in Iterate map")
			}
		}
		return true
	})
	if short != 1 {
		t.Errorf("short maps = %d, want 1", short)
	}
}
