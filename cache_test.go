package lbr

import (
	"fmt"
	"sync"
	"testing"
)

// cacheStore builds a graph big enough that several query shapes share
// triple patterns, so the cross-query materialization cache has something
// to share.
func cacheStore(opts Options) *Store {
	s := NewStoreWithOptions(opts)
	for i := 0; i < 60; i++ {
		p := fmt.Sprintf("p%02d", i)
		s.Add(TripleIRI(p, "knows", fmt.Sprintf("p%02d", (i*7+1)%60)))
		s.Add(TripleIRI(p, "type", "Person"))
		if i%2 == 0 {
			s.Add(TripleLit(p, "mail", "m-"+p))
		}
		if i%3 != 0 {
			s.Add(TripleLit(p, "tel", "t-"+p))
		}
	}
	return s
}

// cacheQueries share the <knows> and <mail> patterns across distinct
// query shapes — the repeat-subpattern workload the store cache exists
// for.
var cacheQueries = []string{
	`SELECT * WHERE { ?x <knows> ?y . OPTIONAL { ?x <mail> ?m . } }`,
	`SELECT * WHERE { ?x <knows> ?y . ?y <knows> ?z . }`,
	`SELECT * WHERE { ?x <knows> ?y . OPTIONAL { ?y <tel> ?t . } }`,
	`SELECT * WHERE { ?x <mail> ?m . OPTIONAL { ?x <knows> ?y . } }`,
}

func TestEffectiveCacheBudget(t *testing.T) {
	cases := []struct {
		in   int64
		want int64
	}{
		{0, 64 << 20},
		{1 << 10, 1 << 10},
		{-1, 0},
	}
	for _, c := range cases {
		if got := (Options{CacheBudget: c.in}).EffectiveCacheBudget(); got != c.want {
			t.Errorf("EffectiveCacheBudget(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestCrossQueryCacheConcurrentDifferential is the PR's -race harness: N
// goroutines issue overlapping queries against one Store; every result
// must be byte-identical to a cold-cache sequential run, and the
// single-flight sharing must be observable — the cache builds each
// pattern far fewer times than queries run.
func TestCrossQueryCacheConcurrentDifferential(t *testing.T) {
	// Cold reference: a cache-disabled store answers each query once,
	// sequentially.
	cold := cacheStore(Options{Workers: 1, CacheBudget: -1})
	expected := make([]string, len(cacheQueries))
	for i, q := range cacheQueries {
		res, err := cold.Query(q)
		if err != nil {
			t.Fatalf("cold %q: %v", q, err)
		}
		expected[i] = res.String()
	}
	if st := cold.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache reported activity: %+v", st)
	}

	shared := cacheStore(Options{Workers: 2})
	const goroutines = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (g + it) % len(cacheQueries)
				res, err := shared.Query(cacheQueries[qi])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				if got := res.String(); got != expected[qi] {
					errs <- fmt.Errorf("goroutine %d iter %d query %d: rows differ from cold sequential run\ngot:  %q\nwant: %q",
						g, it, qi, got, expected[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := shared.CacheStats()
	totalQueries := goroutines * iters
	if st.Hits == 0 {
		t.Fatalf("no cache hits across %d overlapping queries: %+v", totalQueries, st)
	}
	// Single-flight observability: every miss is one pattern build; with
	// each query loading >= 2 patterns, per-query building would mean
	// >= 2*totalQueries builds. The cache must do far fewer — at most one
	// per distinct (pattern, orientation), i.e. fewer than the query count.
	if st.Misses >= int64(totalQueries) {
		t.Fatalf("build count %d not smaller than query count %d: %+v", st.Misses, totalQueries, st)
	}
	if st.Generation != 1 || st.Invalidations != 0 {
		t.Fatalf("unexpected generation churn without writes: %+v", st)
	}
}

// TestCacheInvalidationStaleReadPin interleaves writes and rebuilds with
// cached queries: after every Build the store must answer exactly like a
// cold store holding the same triples — a single row served from a
// retired generation's matrix would miss the just-added data and fail the
// byte comparison. The generation counter and invalidation counts are
// asserted alongside.
func TestCacheInvalidationStaleReadPin(t *testing.T) {
	q := `SELECT * WHERE { ?x <knows> ?y . OPTIONAL { ?x <mail> ?m . } }`
	s := NewStoreWithOptions(Options{Workers: 2})
	coldTriples := func(n int) *Store {
		c := NewStoreWithOptions(Options{CacheBudget: -1})
		for i := 0; i < n; i++ {
			c.Add(TripleIRI(fmt.Sprintf("e%d", i), "knows", fmt.Sprintf("e%d", i+1)))
			if i%2 == 0 {
				c.Add(TripleLit(fmt.Sprintf("e%d", i), "mail", fmt.Sprintf("m%d", i)))
			}
		}
		return c
	}
	var lastGen uint64
	for gen := 1; gen <= 8; gen++ {
		i := gen - 1
		s.Add(TripleIRI(fmt.Sprintf("e%d", i), "knows", fmt.Sprintf("e%d", i+1)))
		if i%2 == 0 {
			s.Add(TripleLit(fmt.Sprintf("e%d", i), "mail", fmt.Sprintf("m%d", i)))
		}
		if err := s.Build(); err != nil {
			t.Fatal(err)
		}
		// Query twice: the first populates this generation's cache, the
		// second must hit it — so from generation 2 on, any failure to
		// retire the previous generation's matrices would serve stale rows
		// here.
		var got string
		for pass := 0; pass < 2; pass++ {
			res, err := s.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got = res.String()
		}
		coldRes, err := coldTriples(gen).Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := coldRes.String(); got != want {
			t.Fatalf("generation %d: cached store diverges from cold store\ngot:  %q\nwant: %q", gen, got, want)
		}
		st := s.CacheStats()
		if st.Generation <= lastGen {
			t.Fatalf("generation did not advance after Build: %+v (last %d)", st, lastGen)
		}
		lastGen = st.Generation
		if gen >= 2 && st.Invalidations == 0 {
			t.Fatalf("rebuild retired no entries by generation %d: %+v", gen, st)
		}
		if st.Hits == 0 {
			t.Fatalf("second pass did not hit the cache at generation %d: %+v", gen, st)
		}
	}
}

// TestCacheInvalidationConcurrentWriters races queries against a writer
// that keeps adding triples and rebuilding. Every result must equal the
// result over some prefix of the writer's batches (the store's documented
// pre-or-post-mutation semantics); after the writer finishes, a final
// query must see everything. Run with -race.
func TestCacheInvalidationConcurrentWriters(t *testing.T) {
	const batches = 6
	q := `SELECT * WHERE { ?x <knows> ?y . OPTIONAL { ?x <mail> ?m . } }`
	batch := func(g int) []Triple {
		return []Triple{
			TripleIRI(fmt.Sprintf("w%d", g), "knows", fmt.Sprintf("w%d", g+1)),
			TripleLit(fmt.Sprintf("w%d", g), "mail", fmt.Sprintf("m%d", g)),
		}
	}
	// Legal results: for each prefix of applied batches, both snapshot
	// renderings a reader can observe — the freshly built index (after the
	// writer's Build) and the delta overlay (after AddAll, before Build),
	// whose base is the previous prefix. Row sets match; enumeration order
	// may differ because the overlay appends new terms to the dictionary.
	legal := map[string]int{}
	record := func(st *Store, g int) {
		res, err := st.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		legal[res.String()] = g
	}
	for g := 0; g < batches; g++ {
		fresh := NewStoreWithOptions(Options{CacheBudget: -1})
		for h := 0; h <= g; h++ {
			fresh.AddAll(batch(h))
		}
		if err := fresh.Build(); err != nil {
			t.Fatal(err)
		}
		record(fresh, g)
		if g > 0 {
			ov := NewStoreWithOptions(Options{CacheBudget: -1})
			for h := 0; h < g; h++ {
				ov.AddAll(batch(h))
			}
			if err := ov.Build(); err != nil {
				t.Fatal(err)
			}
			ov.AddAll(batch(g))
			record(ov, g)
		}
	}

	s := NewStoreWithOptions(Options{Workers: 2})
	s.AddAll(batch(0))
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				res, err := s.Query(q)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if _, ok := legal[res.String()]; !ok {
					errs <- fmt.Errorf("reader %d iter %d: result matches no consistent snapshot:\n%s", r, i, res.String())
					return
				}
			}
		}(r)
	}
	for g := 1; g < batches; g++ {
		s.AddAll(batch(g))
		if err := s.Build(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Quiescent: the final snapshot must serve the full data — twice, so
	// the second answer comes through the final generation's cache.
	for pass := 0; pass < 2; pass++ {
		res, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if g, ok := legal[res.String()]; !ok || g != batches-1 {
			t.Fatalf("pass %d: final result is not the full dataset (prefix %d, ok=%v)", pass, g, ok)
		}
	}
}
